"""Tests for repro.plan: analyzer, logical plans, optimizer, cardinality,
physical plans, and the enumerator."""

import numpy as np
import pytest

from repro.data import build_imdb_catalog
from repro.errors import AnalysisError, PlanError
from repro.plan import (
    AnalyzedQuery,
    BroadcastHashJoin,
    CardinalityEstimator,
    EnumeratorConfig,
    FileScan,
    FilterExec,
    HashAggregate,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalScan,
    PhysicalPlan,
    SortMergeJoin,
    analyze,
    annotate_estimates,
    build_logical_plan,
    default_plan,
    enumerate_plans,
    optimize,
    required_columns,
)
from repro.plan.optimizer import PruneColumns, PushDownFilters
from repro.sql import parse

THREE_TABLE = """SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
WHERE t.id = mc.movie_id AND t.id = mk.movie_id
AND mc.company_id = 4 AND mk.keyword_id < 25"""


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


@pytest.fixture(scope="module")
def three_table_query(catalog):
    return analyze(parse(THREE_TABLE), catalog)


class TestAnalyzer:
    def test_unknown_table(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from ghost_table"), catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t where t.ghost = 1"), catalog)

    def test_unknown_alias_in_predicate(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t where x.id = 1"), catalog)

    def test_bare_column_qualified(self, catalog):
        q = analyze(parse("select count(*) from title where production_year > 2000"), catalog)
        assert q.statement.filters[0].column.table == "title"

    def test_ambiguous_bare_column(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t, keyword k where id > 3"), catalog)

    def test_type_mismatch_numeric_vs_string(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t where t.production_year = 'x'"), catalog)

    def test_like_on_numeric_rejected(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t where t.id like 'a%'"), catalog)

    def test_sum_on_string_rejected(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select sum(t.title) from title t"), catalog)

    def test_self_join_condition_rejected(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select count(*) from title t where t.id = t.kind_id"), catalog)

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(AnalysisError):
            analyze(parse("select t.kind_id, count(*) from title t"), catalog)

    def test_grouped_column_allowed(self, catalog):
        q = analyze(parse("select t.kind_id, count(*) from title t group by t.kind_id"), catalog)
        assert q.statement.group_by

    def test_alias_map(self, three_table_query):
        assert three_table_query.table_of("mc") == "movie_companies"
        with pytest.raises(AnalysisError):
            three_table_query.table_of("nope")


class TestLogicalPlan:
    def test_build_shape_single_table(self, catalog):
        q = analyze(parse("select count(*) from title t where t.id < 10"), catalog)
        plan = build_logical_plan(q)
        assert isinstance(plan, LogicalAggregate)
        assert isinstance(plan.child, LogicalFilter)
        assert isinstance(plan.child.child, LogicalScan)

    def test_build_joins_left_deep(self, three_table_query):
        plan = build_logical_plan(three_table_query)
        join = plan.child
        assert isinstance(join, LogicalJoin)
        assert isinstance(join.left, LogicalJoin)

    def test_tables_propagate(self, three_table_query):
        plan = build_logical_plan(three_table_query)
        assert plan.tables() == {"t", "mc", "mk"}

    def test_describe_contains_operators(self, three_table_query):
        text = build_logical_plan(three_table_query).describe()
        assert "Join" in text and "Scan" in text and "Aggregate" in text

    def test_optimize_prunes_columns(self, three_table_query):
        plan = optimize(build_logical_plan(three_table_query))

        def scans(node):
            if isinstance(node, LogicalScan):
                yield node
            for child in node.children:
                yield from scans(child)

        for scan in scans(plan):
            assert scan.columns, f"scan {scan.alias} has no pruned column list"
            if scan.alias == "mk":
                assert set(scan.columns) == {"movie_id", "keyword_id"}

    def test_pushdown_moves_filter_below_join(self, catalog):
        # Build an artificial plan with the filter above the join.
        q = analyze(parse(
            "select count(*) from title t, movie_keyword mk "
            "where t.id = mk.movie_id and mk.keyword_id < 5"), catalog)
        stmt = q.statement
        join = LogicalJoin(
            left=LogicalScan("title", "t"),
            right=LogicalScan("movie_keyword", "mk"),
            condition=stmt.joins[0],
        )
        lifted = LogicalFilter(child=join, predicates=list(stmt.filters))
        pushed = PushDownFilters().apply(lifted)
        assert isinstance(pushed, LogicalJoin)
        assert isinstance(pushed.right, LogicalFilter)


class TestCardinality:
    def test_scan_cardinality_close_to_truth(self, catalog):
        q = analyze(parse("select count(*) from title t where t.kind_id = 1"), catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        estimate = est.scan_cardinality("t", q.statement.filters)
        truth = (catalog.table("title").column("kind_id") == 1).sum()
        assert truth * 0.5 <= estimate <= truth * 2.0

    def test_range_cardinality_reasonable(self, catalog):
        q = analyze(parse(
            "select count(*) from title t where t.production_year > 1990"), catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        estimate = est.scan_cardinality("t", q.statement.filters)
        years = catalog.table("title").column("production_year")
        truth = (years > 1990).sum()
        assert truth * 0.5 <= estimate <= truth * 2.0

    def test_join_cardinality_fk_pk(self, catalog):
        q = analyze(parse(
            "select count(*) from title t, movie_keyword mk where t.id = mk.movie_id"),
            catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        left = est.table_rows("mk")
        right = est.table_rows("t")
        joined = est.join_cardinality(left, right, q.statement.joins[0])
        # FK-PK join output should be about the FK side's row count.
        assert left * 0.3 <= joined <= left * 3.0

    def test_conjunction_independence(self, catalog):
        q = analyze(parse(
            "select count(*) from title t where t.kind_id = 1 and t.production_year > 2000"),
            catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        sel = est.conjunction_selectivity(q.statement.filters)
        s1 = est.predicate_selectivity(q.statement.filters[0])
        s2 = est.predicate_selectivity(q.statement.filters[1])
        assert sel == pytest.approx(s1 * s2)

    def test_aggregate_cardinality_global(self, catalog):
        q = analyze(parse("select count(*) from title t"), catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        assert est.aggregate_cardinality(1000.0, []) == 1.0

    def test_aggregate_cardinality_grouped_bounded(self, catalog):
        q = analyze(parse(
            "select t.kind_id, count(*) from title t group by t.kind_id"), catalog)
        est = CardinalityEstimator(catalog, q.alias_to_table)
        groups = est.aggregate_cardinality(50.0, q.statement.group_by)
        assert groups <= 50.0

    def test_unqualified_ref_raises(self, catalog):
        from repro.sql.ast import ColumnRef
        est = CardinalityEstimator(catalog, {"t": "title"})
        with pytest.raises(PlanError):
            est.column_stats(ColumnRef("id"))


class TestPhysicalPlan:
    def test_nodes_postorder_children_first(self, three_table_query, catalog):
        plan = enumerate_plans(three_table_query, catalog)[0]
        index = plan.node_index()
        for child_idx, parent_idx in plan.edges():
            assert child_idx < parent_idx

    def test_signature_distinguishes_plans(self, three_table_query, catalog):
        plans = enumerate_plans(three_table_query, catalog)
        sigs = {p.signature() for p in plans}
        assert len(sigs) == len(plans)

    def test_operator_counts(self, three_table_query, catalog):
        plan = enumerate_plans(three_table_query, catalog)[0]
        counts = plan.operator_counts()
        assert counts["FileScan"] == 3
        assert counts.get("HashAggregate", 0) == 2

    def test_statements_include_predicates(self, three_table_query, catalog):
        plan = enumerate_plans(three_table_query, catalog)[0]
        all_statements = "\n".join(
            stmt for node in plan.nodes() for stmt in node.statements())
        assert "keyword_id" in all_statements
        assert "FileScan" in all_statements

    def test_invalid_aggregate_mode(self):
        scan = FileScan(table="t", alias="t", columns=["a"])
        with pytest.raises(PlanError):
            HashAggregate(child=scan, mode="bogus")

    def test_describe_renders_tree(self, three_table_query, catalog):
        plan = enumerate_plans(three_table_query, catalog)[0]
        text = plan.describe()
        assert text.count("FileScan") == 3


class TestEnumerator:
    def test_single_table_has_two_plans(self, catalog):
        q = analyze(parse(
            "select count(*) from movie_keyword mk where mk.keyword_id < 25"), catalog)
        plans = enumerate_plans(q, catalog)
        assert len(plans) == 2
        ops0 = plans[0].operator_counts()
        ops1 = plans[1].operator_counts()
        assert "Filter" not in ops0
        assert ops1.get("Filter") == 1

    def test_multi_join_produces_smj_and_bhj_variants(self, three_table_query, catalog):
        plans = enumerate_plans(three_table_query, catalog)
        has_smj = any(
            isinstance(n, SortMergeJoin) for p in plans for n in p.nodes())
        has_bhj = any(
            isinstance(n, BroadcastHashJoin) for p in plans for n in p.nodes())
        assert has_smj and has_bhj

    def test_max_plans_respected(self, three_table_query, catalog):
        plans = enumerate_plans(three_table_query, catalog,
                                EnumeratorConfig(max_plans=3))
        assert len(plans) == 3

    def test_estimates_annotated(self, three_table_query, catalog):
        for plan in enumerate_plans(three_table_query, catalog):
            for node in plan.nodes():
                assert node.est_rows >= 0.0
                assert node.est_bytes >= 0.0

    def test_smj_has_exchange_and_sort_below(self, three_table_query, catalog):
        plans = enumerate_plans(three_table_query, catalog)
        smj_plan = next(p for p in plans
                        if any(isinstance(n, SortMergeJoin) for n in p.nodes()))
        nodes = smj_plan.nodes()
        index = smj_plan.node_index()
        for node in nodes:
            if isinstance(node, SortMergeJoin):
                for child in node.children:
                    assert child.op_name == "Sort"

    def test_default_plan_is_first(self, three_table_query, catalog):
        plans = enumerate_plans(three_table_query, catalog)
        default = default_plan(three_table_query, catalog)
        assert default.signature() == plans[0].signature()

    def test_broadcast_threshold_zero_forces_smj(self, three_table_query, catalog):
        plan = default_plan(three_table_query, catalog,
                            EnumeratorConfig(broadcast_threshold=0.0))
        joins = [n for n in plan.nodes()
                 if isinstance(n, (SortMergeJoin, BroadcastHashJoin))]
        assert all(isinstance(j, SortMergeJoin) for j in joins)

    def test_huge_threshold_forces_bhj(self, three_table_query, catalog):
        plan = default_plan(three_table_query, catalog,
                            EnumeratorConfig(broadcast_threshold=1e18))
        joins = [n for n in plan.nodes()
                 if isinstance(n, (SortMergeJoin, BroadcastHashJoin))]
        assert all(isinstance(j, BroadcastHashJoin) for j in joins)

    def test_required_columns(self, three_table_query):
        cols = required_columns(three_table_query)
        assert set(cols["mk"]) == {"movie_id", "keyword_id"}
        assert set(cols["t"]) == {"id"}

    def test_five_join_query_enumerates(self, catalog):
        sql = """select count(*) from title t, movie_companies mc, movie_keyword mk,
                 movie_info mi, cast_info ci
                 where t.id = mc.movie_id and t.id = mk.movie_id
                 and t.id = mi.movie_id and t.id = ci.movie_id
                 and mk.keyword_id < 10"""
        q = analyze(parse(sql), catalog)
        plans = enumerate_plans(q, catalog)
        assert len(plans) >= 4
        for plan in plans:
            assert plan.operator_counts()["FileScan"] == 5
