"""Tests for repro.text: tokenizer, vocabulary, word2vec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrainingError, VocabularyError
from repro.text import (
    UNK_TOKEN,
    Vocabulary,
    Word2Vec,
    Word2VecConfig,
    tokenize_statement,
    tokenize_statements,
)


class TestTokenizer:
    def test_filter_statement(self):
        tokens = tokenize_statement(
            "Filter ((isnotnull(mi.info_type_id) && (mi.info_type_id > 2)))")
        assert "filter" in tokens
        assert "isnotnull" in tokens
        assert "mi.info_type_id" in tokens
        assert "&&" in tokens
        assert ">" in tokens

    def test_numbers_bucketized(self):
        tokens = tokenize_statement("x > 71692")
        assert "<num:1e4>" in tokens

    def test_number_zero(self):
        assert "<num:0>" in tokenize_statement("x = 0")

    def test_small_decimal(self):
        tokens = tokenize_statement("x < 0.05")
        assert "<num:1e-2>" in tokens

    def test_same_magnitude_same_token(self):
        a = tokenize_statement("x > 1500")
        b = tokenize_statement("x > 9999")
        assert a[-1] == b[-1]

    def test_string_literal(self):
        tokens = tokenize_statement("s LIKE 'abcdefgh%'")
        assert "<str>" in tokens
        assert any(t.startswith("<len:") for t in tokens)

    def test_case_folding(self):
        assert tokenize_statement("FileScan TITLE")[0] == "filescan"

    def test_operators_preserved(self):
        tokens = tokenize_statement("a <= 1 && b >= 2 || c <> 3")
        for op in ("<=", ">=", "||", "<>"):
            assert op in tokens

    def test_multiple_statements_flatten(self):
        tokens = tokenize_statements(["FileScan t (a)", "Filter a > 5"])
        assert tokens.count("a") >= 1
        assert "filescan" in tokens and "filter" in tokens

    def test_empty_statement(self):
        assert tokenize_statement("") == []


class TestVocabulary:
    def test_unknown_is_id_zero(self):
        vocab = Vocabulary().fit([["a", "b"]])
        assert vocab.id_of("never_seen") == 0
        assert vocab.token_of(0) == UNK_TOKEN

    def test_known_tokens_resolve(self):
        vocab = Vocabulary().fit([["a", "b", "a"]])
        assert "a" in vocab
        assert vocab.token_of(vocab.id_of("a")) == "a"

    def test_min_count_folds_rare_tokens(self):
        vocab = Vocabulary(min_count=2).fit([["a", "a", "rare"]])
        assert "rare" not in vocab
        assert vocab.id_of("rare") == 0

    def test_encode(self):
        vocab = Vocabulary().fit([["a", "b"]])
        ids = vocab.encode(["a", "zzz", "b"])
        assert ids[1] == 0
        assert len(ids) == 3

    def test_double_fit_rejected(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(VocabularyError):
            vocab.fit([["b"]])

    def test_invalid_min_count(self):
        with pytest.raises(VocabularyError):
            Vocabulary(min_count=0)

    def test_token_id_out_of_range(self):
        vocab = Vocabulary().fit([["a"]])
        with pytest.raises(VocabularyError):
            vocab.token_of(99)

    def test_negative_sampling_distribution_sums_to_one(self):
        vocab = Vocabulary().fit([["a"] * 10 + ["b"] * 2])
        dist = vocab.negative_sampling_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert dist[vocab.id_of("a")] > dist[vocab.id_of("b")]

    def test_distribution_requires_fit(self):
        with pytest.raises(VocabularyError):
            Vocabulary().negative_sampling_distribution()


class TestWord2Vec:
    @pytest.fixture(scope="class")
    def trained(self):
        # Two token "topics" that never co-occur: (filter, >, col_a) vs
        # (scan, table_b, read). Embeddings should separate them.
        rng = np.random.default_rng(0)
        sentences = []
        for _ in range(300):
            if rng.random() < 0.5:
                sentences.append(["filter", "col_a", ">", "<num:1e3>"])
            else:
                sentences.append(["scan", "table_b", "read", "bytes"])
        model = Word2Vec(Word2VecConfig(dim=16, epochs=8, seed=1))
        model.train(sentences)
        return model

    def test_vector_shape(self, trained):
        assert trained.vector("filter").shape == (16,)

    def test_cooccurring_tokens_more_similar(self, trained):
        within = trained.similarity("filter", "col_a")
        across = trained.similarity("filter", "table_b")
        assert within > across

    def test_most_similar_returns_neighbours(self, trained):
        neighbours = [t for t, _ in trained.most_similar("scan", top_k=3)]
        assert "table_b" in neighbours or "read" in neighbours or "bytes" in neighbours

    def test_unknown_token_gets_unk_vector(self, trained):
        np.testing.assert_array_equal(
            trained.vector("zzz_unseen"), trained.vector(UNK_TOKEN))

    def test_encode_tokens_mean(self, trained):
        mean = trained.encode_tokens(["filter", "col_a"])
        manual = (trained.vector("filter") + trained.vector("col_a")) / 2
        np.testing.assert_allclose(mean, manual)

    def test_encode_empty_tokens_zero(self, trained):
        np.testing.assert_array_equal(trained.encode_tokens([]), np.zeros(16))

    def test_untrained_raises(self):
        with pytest.raises(TrainingError):
            Word2Vec().vector("a")

    def test_empty_corpus_rejected(self):
        with pytest.raises(TrainingError):
            Word2Vec().train([])

    def test_single_token_sentences_still_trainable(self):
        model = Word2Vec(Word2VecConfig(dim=8, epochs=1))
        model.train([["solo"]])
        assert model.vector("solo").shape == (8,)

    def test_deterministic_given_seed(self):
        sentences = [["a", "b", "c"], ["b", "c", "d"]] * 20
        m1 = Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=3)).train(sentences)
        m2 = Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=3)).train(sentences)
        np.testing.assert_array_equal(m1.vector("b"), m2.vector("b"))

    def test_similarity_bounded(self, trained):
        sim = trained.similarity("filter", "scan")
        assert -1.0 <= sim <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=8))
    def test_property_training_never_nan(self, sentence):
        model = Word2Vec(Word2VecConfig(dim=4, epochs=1, seed=0))
        model.train([sentence] * 5)
        for token in set(sentence):
            assert np.isfinite(model.vector(token)).all()
