"""Targeted tests for paths not covered by the per-module suites."""

import numpy as np
import pytest

from repro.cluster import (
    MAX_CLUSTER,
    PAPER_CLUSTER,
    ResourceProfile,
    SparkSimulator,
    split_stages,
)
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.errors import PlanError
from repro.plan import analyze, default_plan, enumerate_plans
from repro.plan.logical import LogicalScan
from repro.plan.optimizer import SimplifyFilters, _rebuild
from repro.sql import parse


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


class TestPartialAggregateExchangeAnnotation:
    def test_exchange_reports_aggregated_rows(self, catalog):
        """The shuffle above a partial aggregate transfers one row per
        group, not the rows the executor passes through for
        correctness."""
        sql = "select count(*) from movie_keyword mk where mk.keyword_id < 30"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        nodes = plan.nodes()
        exchange = next(n for n in nodes if n.op_name == "ExchangeSinglePartition")
        partial = next(n for n in nodes
                       if n.op_name == "HashAggregate" and n.mode == "partial")
        assert exchange.obs_rows == partial.obs_rows == 1.0

    def test_group_by_exchange_reports_group_count(self, catalog):
        sql = ("select t.kind_id, count(*) from title t group by t.kind_id")
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        exchange = next(n for n in plan.nodes()
                        if n.op_name == "ExchangeHashPartition")
        kinds = np.unique(catalog.table("title").column("kind_id")).size
        assert exchange.obs_rows == float(kinds)


class TestResourceFeatures:
    def test_custom_maxima(self):
        custom_max = ResourceProfile(
            nodes=4, cores_per_node=4, executors=4, executor_cores=4,
            executor_memory_gb=8.0, network_throughput_mbps=240.0,
            disk_throughput_mbps=300.0)
        feats = PAPER_CLUSTER.as_features(maxima=custom_max)
        assert feats[0] == pytest.approx(1.0)       # nodes 4/4
        assert feats[4] == pytest.approx(0.5)       # memory 4/8

    def test_features_clipped_at_one(self):
        monster = ResourceProfile(
            nodes=MAX_CLUSTER.nodes * 2, cores_per_node=4, executors=2,
            executor_cores=2, executor_memory_gb=4.0)
        feats = monster.as_features()
        assert feats.max() <= 1.0

    def test_total_memory(self):
        res = ResourceProfile(executors=3, executor_memory_gb=2.0)
        assert res.total_memory_gb == 6.0


class TestStageProperties:
    def test_broadcast_stage_flag_and_output(self, catalog):
        sql = """select count(*) from title t, movie_keyword mk
                 where t.id = mk.movie_id"""
        query = analyze(parse(sql), catalog)
        plans = enumerate_plans(query, catalog)
        bhj = next(p for p in plans if "BroadcastHashJoin" in p.operator_counts())
        execute_plan(bhj, catalog)
        stages = split_stages(bhj)
        broadcast_stages = [s for s in stages if s.is_broadcast]
        assert broadcast_stages
        for stage in broadcast_stages:
            assert stage.output_rows() >= 0
        result = [s for s in stages if s.is_result_stage]
        assert len(result) == 1
        assert result[0].output_rows() == 1.0  # count(*) row

    def test_stage_repr(self, catalog):
        sql = "select count(*) from title t"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        stages = split_stages(plan)
        assert all("Stage#" in repr(s) for s in stages)


class TestOptimizerInternals:
    def test_rebuild_rejects_unknown_node(self):
        class Strange:
            children = []

        with pytest.raises(PlanError):
            _rebuild(Strange(), [])

    def test_rebuild_scan_is_identity(self):
        scan = LogicalScan(table="t", alias="t")
        assert _rebuild(scan, []) is scan

    def test_simplify_filters_keeps_contradiction(self, catalog):
        # Contradictory BETWEEN stays (executor yields empty result).
        sql = "select count(*) from title t where t.id between 100 and 1"
        query = analyze(parse(sql), catalog)
        from repro.plan import build_logical_plan
        plan = build_logical_plan(query)
        simplified = SimplifyFilters().apply(plan)
        assert "between" in simplified.describe().lower()
        physical = default_plan(query, catalog)
        result = execute_plan(physical, catalog)
        assert result.column("count(*)")[0] == 0.0


class TestSimulatorEdgeCases:
    def test_empty_result_plan_simulates(self, catalog):
        sql = "select count(*) from title t where t.production_year > 99999"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        runtime = SparkSimulator(seed=0).execute(plan, PAPER_CLUSTER).runtime_seconds
        assert np.isfinite(runtime) and runtime > 0

    def test_single_core_single_executor(self, catalog):
        sql = "select count(*) from movie_keyword mk where mk.keyword_id < 30"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        tiny = ResourceProfile(nodes=1, cores_per_node=1, executors=1,
                               executor_cores=1, executor_memory_gb=0.5)
        runtime = SparkSimulator(seed=0).execute(plan, tiny).runtime_seconds
        assert np.isfinite(runtime)

    def test_oversubscribed_profile_simulates(self, catalog):
        sql = "select count(*) from movie_keyword mk where mk.keyword_id < 30"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        over = ResourceProfile(nodes=1, cores_per_node=2, executors=8,
                               executor_cores=4)
        assert over.oversubscribed
        runtime = SparkSimulator(seed=0).execute(plan, over).runtime_seconds
        assert np.isfinite(runtime)
