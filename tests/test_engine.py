"""Tests for the columnar execution engine (repro.engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import build_imdb_catalog
from repro.engine import Relation, execute_plan, group_codes, join_indices
from repro.errors import PlanError, SimulationError
from repro.plan import analyze, default_plan, enumerate_plans
from repro.sql import parse


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


def run_count(catalog, sql: str) -> float:
    q = analyze(parse(sql), catalog)
    plan = default_plan(q, catalog)
    result = execute_plan(plan, catalog)
    return float(result.column("count(*)")[0])


class TestRelation:
    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(PlanError):
            Relation({"a": np.arange(3.0), "b": np.arange(4.0)})

    def test_take_and_filter(self):
        rel = Relation({"a": np.arange(5.0)})
        np.testing.assert_allclose(rel.take(np.array([0, 2])).column("a"), [0, 2])
        np.testing.assert_allclose(
            rel.filter(rel.column("a") > 2).column("a"), [3, 4])

    def test_merge_duplicate_column_rejected(self):
        a = Relation({"x": np.arange(2.0)})
        with pytest.raises(PlanError):
            a.merge(Relation({"x": np.arange(2.0)}))

    def test_merge_length_mismatch_rejected(self):
        with pytest.raises(PlanError):
            Relation({"a": np.arange(2.0)}).merge(Relation({"b": np.arange(3.0)}))

    def test_estimated_bytes_counts_strings_wider(self):
        nums = Relation({"a": np.arange(10.0)})
        strs = Relation({"s": np.array(["x"] * 10, dtype=object)})
        assert strs.estimated_bytes() > nums.estimated_bytes()

    def test_missing_column_raises(self):
        with pytest.raises(PlanError):
            Relation({"a": np.arange(2.0)}).column("b")


class TestJoinIndices:
    def test_basic_match(self):
        li, ri = join_indices(np.array([1.0, 2.0, 3.0]), np.array([2.0, 3.0, 4.0]))
        pairs = set(zip(li.tolist(), ri.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_duplicates_produce_all_pairs(self):
        li, ri = join_indices(np.array([1.0, 1.0]), np.array([1.0, 1.0, 1.0]))
        assert len(li) == 6

    def test_nulls_never_match(self):
        li, ri = join_indices(np.array([np.nan, 1.0]), np.array([np.nan, 1.0]))
        assert set(zip(li.tolist(), ri.tolist())) == {(1, 1)}

    def test_empty_inputs(self):
        li, ri = join_indices(np.array([]), np.array([1.0]))
        assert len(li) == 0

    def test_no_matches(self):
        li, ri = join_indices(np.array([1.0]), np.array([2.0]))
        assert len(li) == 0

    def test_string_keys(self):
        li, ri = join_indices(np.array(["a", "b", None], dtype=object),
                              np.array(["b", "c"], dtype=object))
        assert set(zip(li.tolist(), ri.tolist())) == {(1, 0)}

    def test_pair_limit_enforced(self, monkeypatch):
        import repro.engine.relation as rel_mod
        monkeypatch.setattr(rel_mod, "MAX_JOIN_PAIRS", 10)
        with pytest.raises(SimulationError):
            join_indices(np.ones(5), np.ones(5))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 8), min_size=0, max_size=20),
           st.lists(st.integers(0, 8), min_size=0, max_size=20))
    def test_property_matches_bruteforce(self, left, right):
        lk = np.array(left, dtype=np.float64)
        rk = np.array(right, dtype=np.float64)
        li, ri = join_indices(lk, rk)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j) for i, lv in enumerate(left) for j, rv in enumerate(right) if lv == rv
        )
        assert got == expected


class TestGroupCodes:
    def test_single_key(self):
        codes, n = group_codes([np.array([5.0, 3.0, 5.0])])
        assert n == 2
        assert codes[0] == codes[2] != codes[1]

    def test_composite_key(self):
        codes, n = group_codes([
            np.array([1.0, 1.0, 2.0, 2.0]),
            np.array([1.0, 2.0, 1.0, 1.0]),
        ])
        assert n == 3
        assert codes[2] == codes[3]

    def test_nulls_form_one_group(self):
        codes, n = group_codes([np.array([np.nan, np.nan, 1.0])])
        assert n == 2
        assert codes[0] == codes[1]

    def test_string_keys(self):
        codes, n = group_codes([np.array(["a", None, "a", None], dtype=object)])
        assert n == 2
        assert codes[1] == codes[3]

    def test_empty_keys_rejected(self):
        with pytest.raises(PlanError):
            group_codes([])


class TestExecutePlan:
    def test_count_matches_numpy_single_table(self, catalog):
        got = run_count(catalog,
                        "select count(*) from movie_keyword mk where mk.keyword_id < 25")
        truth = float((catalog.table("movie_keyword").column("keyword_id") < 25).sum())
        assert got == truth

    def test_all_plans_agree_two_table(self, catalog):
        sql = ("select count(*) from title t, movie_companies mc "
               "where t.id = mc.movie_id and mc.company_type_id > 1")
        q = analyze(parse(sql), catalog)
        counts = {float(execute_plan(p, catalog).column("count(*)")[0])
                  for p in enumerate_plans(q, catalog)}
        assert len(counts) == 1

    def test_all_plans_agree_three_table(self, catalog):
        sql = """select count(*) from title t, movie_companies mc, movie_keyword mk
                 where t.id = mc.movie_id and t.id = mk.movie_id
                 and mc.company_id < 30 and mk.keyword_id < 40"""
        q = analyze(parse(sql), catalog)
        counts = {float(execute_plan(p, catalog).column("count(*)")[0])
                  for p in enumerate_plans(q, catalog)}
        assert len(counts) == 1

    def test_join_count_matches_bruteforce(self, catalog):
        t = catalog.table("title").column("id")
        mk = catalog.table("movie_keyword")
        sel = mk.column("keyword_id") < 10
        fk = mk.column("movie_id")[sel]
        truth = float(np.isin(fk, t).sum())
        got = run_count(catalog,
                        "select count(*) from title t, movie_keyword mk "
                        "where t.id = mk.movie_id and mk.keyword_id < 10")
        assert got == truth

    def test_group_by_results(self, catalog):
        sql = ("select t.kind_id, count(*) from title t "
               "group by t.kind_id order by t.kind_id")
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        kinds = catalog.table("title").column("kind_id")
        expected = {float(k): float(c) for k, c in
                    zip(*np.unique(kinds, return_counts=True))}
        got = dict(zip(result.column("t.kind_id").tolist(),
                       result.column("count(*)").tolist()))
        assert got == expected

    def test_order_by_sorts(self, catalog):
        sql = ("select t.kind_id, count(*) from title t "
               "group by t.kind_id order by t.kind_id desc")
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        vals = result.column("t.kind_id")
        assert all(vals[i] >= vals[i + 1] for i in range(len(vals) - 1))

    def test_limit_truncates(self, catalog):
        sql = ("select t.kind_id, count(*) from title t "
               "group by t.kind_id order by t.kind_id limit 3")
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        assert result.num_rows == 3

    def test_sum_avg_min_max(self, catalog):
        sql = ("select sum(t.production_year), avg(t.production_year), "
               "min(t.production_year), max(t.production_year) from title t")
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        years = catalog.table("title").column("production_year")
        assert result.column("sum(t.production_year)")[0] == pytest.approx(years.sum())
        assert result.column("avg(t.production_year)")[0] == pytest.approx(years.mean())
        assert result.column("min(t.production_year)")[0] == years.min()
        assert result.column("max(t.production_year)")[0] == years.max()

    def test_count_column_skips_nulls(self, catalog):
        sql = "select count(t.season_nr) from title t"
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        seasons = catalog.table("title").column("season_nr")
        assert result.column("count(t.season_nr)")[0] == float((~np.isnan(seasons)).sum())

    def test_empty_result_count_is_zero(self, catalog):
        got = run_count(catalog,
                        "select count(*) from title t where t.production_year > 99999")
        assert got == 0.0

    def test_observed_rows_annotated(self, catalog):
        sql = "select count(*) from movie_keyword mk where mk.keyword_id < 25"
        q = analyze(parse(sql), catalog)
        plan = default_plan(q, catalog)
        execute_plan(plan, catalog)
        for node in plan.nodes():
            assert node.obs_rows is not None

    def test_observed_rows_decrease_through_filter(self, catalog):
        sql = "select count(*) from movie_keyword mk where mk.keyword_id < 5"
        q = analyze(parse(sql), catalog)
        plans = enumerate_plans(q, catalog)
        unpushed = next(p for p in plans if "Filter" in p.operator_counts())
        execute_plan(unpushed, catalog)
        nodes = unpushed.nodes()
        scan = next(n for n in nodes if n.op_name == "FileScan")
        filt = next(n for n in nodes if n.op_name == "Filter")
        assert filt.obs_rows < scan.obs_rows

    def test_string_predicate_query(self, catalog):
        got = run_count(catalog,
                        "select count(*) from company_name cn "
                        "where cn.country_code = 'us'")
        codes = catalog.table("company_name").column("country_code")
        truth = float(sum(1 for c in codes if c == "us"))
        assert got == truth

    def test_like_predicate_query(self, catalog):
        got = run_count(catalog,
                        "select count(*) from keyword k where k.keyword like 'kw_1%'")
        words = catalog.table("keyword").column("keyword")
        truth = float(sum(1 for w in words if w is not None and w.startswith("kw_1")))
        assert got == truth

    def test_min_max_on_string_column(self, catalog):
        sql = "select min(cn.country_code), max(cn.country_code) from company_name cn"
        q = analyze(parse(sql), catalog)
        result = execute_plan(default_plan(q, catalog), catalog)
        codes = [c for c in catalog.table("company_name").column("country_code")
                 if c is not None]
        assert result.column("min(cn.country_code)")[0] == min(codes)
        assert result.column("max(cn.country_code)")[0] == max(codes)
