"""Tests for repro.encoding: one-hot, semantic, structure, plan encoder."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER
from repro.data import build_imdb_catalog
from repro.encoding import (
    EXTRA_FEATURE_NAMES,
    NodeSemanticEncoder,
    OneHotOperatorEncoder,
    PlanEncoder,
    StructureEncoder,
    build_statement_corpus,
)
from repro.errors import EncodingError
from repro.plan import analyze, enumerate_plans
from repro.sql import parse
from repro.text import Word2VecConfig


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


@pytest.fixture(scope="module")
def plans(catalog):
    sqls = [
        "select count(*) from movie_keyword mk where mk.keyword_id < 25",
        """select count(*) from title t, movie_companies mc
           where t.id = mc.movie_id and mc.company_type_id > 1""",
        """select count(*) from title t, movie_companies mc, movie_keyword mk
           where t.id = mc.movie_id and t.id = mk.movie_id
           and mc.company_id = 4 and mk.keyword_id < 25""",
    ]
    out = []
    for sql in sqls:
        q = analyze(parse(sql), catalog)
        out.extend(enumerate_plans(q, catalog)[:4])
    return out


@pytest.fixture(scope="module")
def encoder(plans):
    return PlanEncoder.fit(plans, word2vec_config=Word2VecConfig(dim=12, epochs=2))


class TestOneHot:
    def test_dim_matches_vocab(self):
        enc = OneHotOperatorEncoder()
        assert enc.dim == len(enc.vocabulary)

    def test_encode_known_operator(self):
        enc = OneHotOperatorEncoder()
        vec = enc.encode_name("FileScan")
        assert vec.sum() == 1.0
        assert vec[enc.vocabulary.index("FileScan")] == 1.0

    def test_unknown_operator_rejected(self):
        with pytest.raises(EncodingError):
            OneHotOperatorEncoder().encode_name("TeleportJoin")

    def test_duplicate_vocab_rejected(self):
        with pytest.raises(EncodingError):
            OneHotOperatorEncoder(["A", "A"])

    def test_encode_plan_nodes(self, plans):
        enc = OneHotOperatorEncoder()
        for node in plans[0].nodes():
            vec = enc.encode_node(node)
            assert vec.sum() == 1.0


class TestSemanticEncoder:
    def test_corpus_nonempty(self, plans):
        corpus = build_statement_corpus(plans)
        assert len(corpus) >= sum(p.num_nodes for p in plans) * 0.9

    def test_fit_and_encode(self, plans):
        enc = NodeSemanticEncoder.fit(
            plans, config=Word2VecConfig(dim=8, epochs=1))
        matrix = enc.encode_plan_nodes(plans[0])
        assert matrix.shape == (plans[0].num_nodes, enc.dim)

    def test_cardinality_features_appended(self, plans):
        with_card = NodeSemanticEncoder.fit(
            plans, config=Word2VecConfig(dim=8, epochs=1), include_cardinality=True)
        without = NodeSemanticEncoder(with_card.word2vec, include_cardinality=False)
        assert with_card.dim == without.dim + 2

    def test_untrained_encoder_raises(self, plans):
        with pytest.raises(EncodingError):
            NodeSemanticEncoder(None).encode_node(plans[0].root)

    def test_similar_scans_get_similar_vectors(self, plans):
        enc = NodeSemanticEncoder.fit(
            plans, config=Word2VecConfig(dim=12, epochs=3),
            include_cardinality=False)
        scans = [n for p in plans for n in p.nodes() if n.op_name == "FileScan"]
        aggs = [n for p in plans for n in p.nodes() if n.op_name == "HashAggregate"]
        scan_a, scan_b = enc.encode_node(scans[0]), enc.encode_node(scans[1])
        agg = enc.encode_node(aggs[0])

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)

        assert cos(scan_a, scan_b) > cos(scan_a, agg)


class TestStructureEncoder:
    def test_matrix_shape(self, plans):
        enc = StructureEncoder(max_nodes=48)
        mat = enc.encode_plan(plans[0])
        assert mat.shape == (plans[0].num_nodes, 48)

    def test_child_parent_signs(self, plans):
        plan = plans[0]
        enc = StructureEncoder(max_nodes=48)
        mat = enc.encode_plan(plan)
        for child_idx, parent_idx in plan.edges():
            assert mat[parent_idx, child_idx] == 1.0
            assert mat[child_idx, parent_idx] == -1.0

    def test_root_has_no_parent_marker(self, plans):
        plan = plans[0]
        enc = StructureEncoder(max_nodes=48)
        mat = enc.encode_plan(plan)
        root_idx = plan.num_nodes - 1  # post-order: root is last
        assert (mat[root_idx] >= 0).all()

    def test_leaves_have_no_children_markers(self, plans):
        plan = plans[0]
        mat = StructureEncoder(max_nodes=48).encode_plan(plan)
        for i, node in enumerate(plan.nodes()):
            if not node.children:
                assert (mat[i] <= 0).all()

    def test_too_large_plan_rejected(self, plans):
        enc = StructureEncoder(max_nodes=2)
        with pytest.raises(EncodingError):
            enc.encode_plan(plans[-1])

    def test_invalid_max_nodes(self):
        with pytest.raises(EncodingError):
            StructureEncoder(max_nodes=0)

    def test_child_mask_matches_edges(self, plans):
        plan = plans[0]
        mask = StructureEncoder().child_mask(plan)
        edges = {(p, c) for c, p in plan.edges()}
        got = {(i, j) for i in range(plan.num_nodes)
               for j in range(plan.num_nodes) if mask[i, j]}
        assert got == edges


class TestPlanEncoder:
    def test_encode_shapes(self, encoder, plans):
        enc = encoder.encode(plans[0], PAPER_CLUSTER)
        n = plans[0].num_nodes
        assert enc.node_features.shape == (n, encoder.node_dim)
        assert enc.child_mask.shape == (n, n)
        assert enc.resources.shape == (7,)
        assert enc.extras.shape == (len(EXTRA_FEATURE_NAMES),)

    def test_structure_can_be_disabled(self, encoder, plans):
        no_struct = PlanEncoder(semantic=encoder.semantic, use_structure=False)
        enc = no_struct.encode(plans[0], PAPER_CLUSTER)
        assert enc.node_features.shape[1] == encoder.semantic.dim
        # Child mask still provided (attention needs it regardless).
        assert enc.child_mask.shape[0] == plans[0].num_nodes

    def test_onehot_mode(self, plans):
        enc = PlanEncoder.fit(plans, use_onehot=True)
        encoded = enc.encode(plans[0], PAPER_CLUSTER)
        assert encoded.node_features.shape[1] == enc.node_dim

    def test_requires_semantic_or_onehot(self):
        with pytest.raises(EncodingError):
            PlanEncoder(semantic=None, use_onehot=False)

    def test_resources_vary_encoding(self, encoder, plans):
        lo = encoder.encode(plans[0], PAPER_CLUSTER.with_memory(1.0))
        hi = encoder.encode(plans[0], PAPER_CLUSTER.with_memory(6.0))
        assert not np.array_equal(lo.resources, hi.resources)
        np.testing.assert_array_equal(lo.node_features, hi.node_features)

    def test_different_plans_differ(self, encoder, plans):
        a = encoder.encode(plans[0], PAPER_CLUSTER)
        b = encoder.encode(plans[-1], PAPER_CLUSTER)
        assert a.node_features.shape != b.node_features.shape or \
            not np.array_equal(a.node_features, b.node_features)

    def test_extras_in_unit_range(self, encoder, plans):
        for plan in plans:
            extras = encoder.encode(plan, PAPER_CLUSTER).extras
            assert (extras >= 0).all()
            assert (extras <= 1.5).all()

    def test_encode_many(self, encoder, plans):
        pairs = [(p, PAPER_CLUSTER) for p in plans[:3]]
        out = encoder.encode_many(pairs)
        assert len(out) == 3
