"""Tests for repro.eval: metrics (eqs. 12-15), reporting, the pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.eval import (
    Metrics,
    compute_metrics,
    correlation,
    mean_squared_error,
    r_squared,
    relative_error,
    render_scatter_summary,
    render_series,
    render_table,
)
from repro.eval.experiments import SMOKE, ExperimentPipeline, ExperimentScale


class TestRelativeError:
    def test_perfect_prediction(self):
        a = np.array([1.0, 2.0, 3.0])
        assert relative_error(a, a) == 0.0

    def test_known_value(self):
        assert relative_error(np.array([2.0]), np.array([1.0])) == pytest.approx(0.5)

    def test_asymmetric_in_actual(self):
        # RE divides by the actual, as in eq. 12.
        a = relative_error(np.array([1.0]), np.array([2.0]))
        b = relative_error(np.array([2.0]), np.array([1.0]))
        assert a != b

    def test_shape_mismatch(self):
        with pytest.raises(DatasetError):
            relative_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            relative_error(np.array([]), np.array([]))


class TestMSE:
    def test_log_space_default(self):
        actual = np.array([np.e - 1])
        estimated = np.array([0.0])
        assert mean_squared_error(actual, estimated) == pytest.approx(1.0)

    def test_raw_space(self):
        assert mean_squared_error(
            np.array([3.0]), np.array([1.0]), log_space=False) == pytest.approx(4.0)


class TestCorrelation:
    def test_perfectly_correlated(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation(a, 2 * a + 1) == pytest.approx(1.0)

    def test_anticorrelated(self):
        a = np.array([1.0, 2.0, 3.0])
        assert correlation(a, -a) == pytest.approx(-1.0)

    def test_degenerate_returns_zero(self):
        a = np.array([2.0, 2.0, 2.0])
        assert correlation(a, np.array([1.0, 2.0, 3.0])) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.1, 100), min_size=3, max_size=20))
    def test_property_bounded(self, values):
        rng = np.random.default_rng(0)
        actual = np.array(values)
        estimated = actual + rng.normal(size=len(values))
        c = correlation(actual, estimated)
        assert -1.0 - 1e-9 <= c <= 1.0 + 1e-9


class TestR2:
    def test_perfect_is_one(self):
        a = np.array([1.0, 2.0, 3.0])
        assert r_squared(a, a) == pytest.approx(1.0)

    def test_mean_predictor_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, a.mean())
        assert r_squared(a, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        a = np.array([1.0, 2.0, 3.0])
        assert r_squared(a, np.array([3.0, 1.0, -5.0])) < 0


class TestComputeMetrics:
    def test_bundles_all_four(self):
        a = np.array([1.0, 2.0, 4.0, 8.0])
        m = compute_metrics(a, a * 1.1)
        assert m.re == pytest.approx(0.1, abs=1e-9)
        assert m.cor == pytest.approx(1.0)
        assert m.r2 > 0.9
        assert m.mse < 0.1

    def test_as_row_and_str(self):
        m = Metrics(re=0.1, mse=0.2, cor=0.9, r2=0.8)
        row = m.as_row()
        assert set(row) == {"RE", "MSE", "COR", "R2"}
        assert "RE=0.1000" in str(m)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("Title", ["a", "bbbb"], [[1, 2.5], ["xx", 3.0]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "bbbb" in lines[2]
        assert "2.5000" in text

    def test_render_series(self):
        text = render_series("Fig", "mem", [1, 2], {"p1": [0.5, 0.6], "p2": [0.7, 0.8]})
        assert "mem" in text and "p1" in text and "0.8000" in text

    def test_render_scatter_summary(self):
        rng = np.random.default_rng(0)
        actual = rng.uniform(1, 10, 100)
        estimated = actual * rng.uniform(0.8, 1.2, 100)
        text = render_scatter_summary("Scatter", actual, estimated, bins=4)
        assert "mean |rel err|" in text
        assert text.count("\n") >= 6


class TestExperimentPipeline:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            ExperimentPipeline(dataset="oracle")

    def test_smoke_pipeline_end_to_end(self):
        pipe = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        assert len(pipe.queries) == SMOKE.num_queries
        assert pipe.records
        tv = pipe.train_variant("RAAL", epochs=3)
        assert np.isfinite(tv.metrics.re)
        assert len(tv.actual) == len(tv.estimated) == len(pipe.split.test)

    def test_fixed_resources_pipeline(self):
        from repro.cluster import PAPER_CLUSTER
        scale = ExperimentScale(
            catalog_scale=0.05, num_queries=10, resource_states_per_plan=1,
            word2vec_dim=8, word2vec_epochs=1, hidden_size=16,
            embedding_dim=16, epochs=2, max_joins=2)
        pipe = ExperimentPipeline(dataset="imdb", scale=scale,
                                  fixed_resources=PAPER_CLUSTER)
        states = {r.resources for r in pipe.records}
        assert states == {PAPER_CLUSTER}

    def test_samples_cached(self):
        from repro.core import variant
        pipe = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        a = pipe.samples_for(variant("RAAL"), "train")
        b = pipe.samples_for(variant("RAAL"), "train")
        assert a is b

    def test_samples_bad_part_rejected(self):
        from repro.core import variant
        pipe = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        with pytest.raises(DatasetError):
            pipe.samples_for(variant("RAAL"), "validation")


class TestErrorAnalysis:
    @pytest.fixture(scope="class")
    def evaluated(self):
        from repro.eval.analysis import analyze_errors
        from repro.core import variant
        pipe = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        tv = pipe.train_variant("RAAL", epochs=3)
        spec = variant("RAAL")
        test = pipe.split.test
        preds = tv.trainer.predict_seconds(
            [s.encoded for s in pipe.samples_for(spec, "test")])
        return test, preds

    def test_breakdown_structure(self, evaluated):
        from repro.eval import analyze_errors
        records, preds = evaluated
        breakdown = analyze_errors(records, preds)
        assert np.isfinite(breakdown.overall.mse)
        assert breakdown.by_joins
        assert breakdown.by_cost_magnitude
        assert breakdown.by_memory

    def test_render_contains_sections(self, evaluated):
        from repro.eval import analyze_errors
        records, preds = evaluated
        text = analyze_errors(records, preds).render()
        for section in ("Overall", "By join count", "By plan size",
                        "By actual-cost magnitude", "By executor memory"):
            assert section in text

    def test_length_mismatch_rejected(self, evaluated):
        from repro.eval import analyze_errors
        records, preds = evaluated
        with pytest.raises(DatasetError):
            analyze_errors(records, preds[:-1])

    def test_empty_rejected(self):
        from repro.eval import analyze_errors
        with pytest.raises(DatasetError):
            analyze_errors([], [])

    def test_slices_cover_all_records(self, evaluated):
        from repro.eval.analysis import EvaluatedRecord
        records, preds = evaluated
        items = [EvaluatedRecord(r, float(p)) for r, p in zip(records, preds)]
        assert all(i.num_joins >= 0 for i in items)
        assert all(i.num_nodes >= 3 for i in items)
