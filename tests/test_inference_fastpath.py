"""Inference fast path: graph-free forward equivalence and no-grad guarantees.

The fast path (`RAAL.forward_inference` / `Trainer.predict_*(fast=True)`)
must be numerically interchangeable with the autograd forward for every
model variant, with and without padding, and the whole prediction path
must never build or retain an autograd graph.
"""

import numpy as np
import pytest

from repro.core import RAAL, RAALBatch, RAALConfig, CostPredictor, Trainer, TrainerConfig
from repro.encoding import EncodedPlan, PlanEncoder
from repro.errors import ShapeError
from repro.nn import Tensor, raal_forward_inference
from repro.plan.physical import FileScan, FilterExec, HashAggregate, PhysicalPlan
from repro.cluster.resources import ResourceProfile

TOL = 1e-8

#: Model-side variant switches (paper names; NE-LSTM differs only in
#: the encoder, so its model config equals RAAL's and the degraded
#: "every other node" child mask is exercised separately below).
VARIANT_SWITCHES = {
    "RAAL": {},
    "NE-LSTM": {},
    "NA-LSTM": {"use_node_attention": False},
    "RAAC": {"feature_layer": "cnn"},
    "no-resource-attention": {"use_resource_attention": False},
}


def make_batch(config: RAALConfig, batch=5, n=9, seed=0, pad=True,
               dense_child_mask=False):
    """Random batch with tree-shaped (or NE-LSTM-degraded) child masks."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(2, n + 1, size=batch) if pad else np.full(batch, n)
    mask = np.zeros((batch, n), dtype=bool)
    child = np.zeros((batch, n, n), dtype=bool)
    for b, length in enumerate(lengths):
        mask[b, :length] = True
        if dense_child_mask:
            # The NE-LSTM encoder emits "every other node" masks.
            block = ~np.eye(length, dtype=bool)
            child[b, :length, :length] = block
        else:
            for i in range(1, length):
                child[b, i, rng.integers(0, i)] = True
    return RAALBatch(
        node_features=rng.normal(size=(batch, n, config.node_dim)),
        child_mask=child,
        node_mask=mask,
        resources=rng.random((batch, config.resource_dim)),
        extras=rng.random((batch, config.extras_dim)),
    )


class TestForwardEquivalence:
    @pytest.mark.parametrize("name", sorted(VARIANT_SWITCHES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("pad", [True, False], ids=["padded", "unpadded"])
    def test_variant_equivalence(self, name, seed, pad):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            seed=seed, **VARIANT_SWITCHES[name])
        model = RAAL(config).eval()
        batch = make_batch(config, seed=seed, pad=pad,
                           dense_child_mask=(name == "NE-LSTM"))
        slow = model(batch).numpy()
        fast = model.forward_inference(batch)
        assert isinstance(fast, np.ndarray)
        np.testing.assert_allclose(fast, slow, rtol=0.0, atol=TOL)

    def test_equivalence_in_train_mode_uses_eval_semantics(self):
        # forward_inference must match the *eval-mode* autograd forward
        # even if someone forgot to call .eval() (dropout off).
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            dropout=0.5)
        model = RAAL(config).train()
        batch = make_batch(config, seed=3)
        fast = model.forward_inference(batch)
        slow = model.eval()(batch).numpy()
        np.testing.assert_allclose(fast, slow, rtol=0.0, atol=TOL)

    def test_single_sample_batch(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16)
        model = RAAL(config).eval()
        batch = make_batch(config, batch=1, n=4, seed=5)
        fast = model.forward_inference(batch)
        assert fast.shape == (1,)
        np.testing.assert_allclose(fast, model(batch).numpy(), rtol=0.0, atol=TOL)

    def test_wrong_node_dim_rejected(self):
        model = RAAL(RAALConfig(node_dim=20))
        bad = make_batch(RAALConfig(node_dim=21))
        with pytest.raises(ShapeError):
            model.forward_inference(bad)

    def test_free_function_matches_method(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16)
        model = RAAL(config).eval()
        batch = make_batch(config, seed=7)
        np.testing.assert_array_equal(
            raal_forward_inference(model, batch), model.forward_inference(batch))


def random_encoded(config: RAALConfig, count=12, max_n=10, seed=0):
    """Random EncodedPlan list with varied node counts (for bucketing)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(2, max_n + 1))
        child = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            child[i, rng.integers(0, i)] = True
        out.append(EncodedPlan(
            node_features=rng.normal(size=(n, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim),
        ))
    return out


class TestPredictionPath:
    @pytest.fixture()
    def trainer(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16)
        return Trainer(RAAL(config), TrainerConfig(batch_size=4))

    def test_fast_matches_autograd_predictions(self, trainer):
        encoded = random_encoded(trainer.model.config, count=13, seed=1)
        fast = trainer.predict_seconds(encoded, fast=True)
        slow = trainer.predict_seconds(encoded, fast=False, bucket=False)
        np.testing.assert_allclose(fast, slow, rtol=0.0, atol=1e-6)

    def test_bucketing_preserves_input_order(self, trainer):
        encoded = random_encoded(trainer.model.config, count=17, seed=2)
        bucketed = trainer.predict_log(encoded, bucket=True)
        plain = trainer.predict_log(encoded, bucket=False)
        np.testing.assert_allclose(bucketed, plain, rtol=0.0, atol=TOL)

    def test_empty_input(self, trainer):
        assert trainer.predict_seconds([]).shape == (0,)

    def test_no_graph_retained_after_prediction(self, trainer, monkeypatch):
        """Regression: the whole prediction path runs under no_grad."""
        captured = []
        original = RAAL.forward

        def spy(self, batch):
            out = original(self, batch)
            captured.append(out)
            return out

        monkeypatch.setattr(RAAL, "forward", spy)
        encoded = random_encoded(trainer.model.config, count=6, seed=3)
        trainer.predict_seconds(encoded, fast=False)
        assert captured, "autograd forward was not exercised"
        for out in captured:
            assert isinstance(out, Tensor)
            assert not out.requires_grad
            assert out._parents == ()
        assert all(p.grad is None for p in trainer.model.parameters())

    def test_fast_path_builds_no_tensors(self, trainer, monkeypatch):
        calls = []
        original = RAAL.forward
        monkeypatch.setattr(
            RAAL, "forward",
            lambda self, batch: calls.append(1) or original(self, batch))
        encoded = random_encoded(trainer.model.config, count=6, seed=4)
        out = trainer.predict_seconds(encoded, fast=True)
        assert isinstance(out, np.ndarray)
        assert not calls, "fast path fell back to the autograd forward"
        assert all(p.grad is None for p in trainer.model.parameters())


def tiny_plan(threshold: float, rows: float = 100.0) -> PhysicalPlan:
    scan = FileScan(table="t", alias="t", columns=["a"])
    scan.est_rows = rows
    scan.est_bytes = rows * 8
    filt = FilterExec(child=scan, predicates=[])
    filt.est_rows = rows * threshold
    filt.est_bytes = rows * threshold * 8
    agg = HashAggregate(child=filt)
    agg.est_rows = 1.0
    agg.est_bytes = 8.0
    return PhysicalPlan(agg, {"t": "t"})


class TestPredictorNoGrad:
    def test_predict_many_under_no_grad(self, monkeypatch):
        encoder = PlanEncoder(use_onehot=True)
        config = RAALConfig(node_dim=encoder.node_dim, hidden_size=16,
                            embedding_dim=16)
        predictor = CostPredictor(encoder, Trainer(RAAL(config)))
        captured = []
        original = RAAL.forward

        def spy(self, batch):
            out = original(self, batch)
            captured.append(out)
            return out

        monkeypatch.setattr(RAAL, "forward", spy)
        pairs = [(tiny_plan(0.1 * i), ResourceProfile()) for i in range(1, 4)]
        costs = predictor.predict_many(pairs, fast=False)
        assert costs.shape == (3,)
        for out in captured:
            assert not out.requires_grad and out._parents == ()
        assert all(p.grad is None for p in predictor.trainer.model.parameters())

    def test_predict_grid_shape_and_consistency(self):
        encoder = PlanEncoder(use_onehot=True)
        config = RAALConfig(node_dim=encoder.node_dim, hidden_size=16,
                            embedding_dim=16)
        predictor = CostPredictor(encoder, Trainer(RAAL(config)))
        plans = [tiny_plan(0.2), tiny_plan(0.7)]
        profiles = [ResourceProfile(), ResourceProfile(executor_memory_gb=2.0),
                    ResourceProfile(executors=4)]
        grid = predictor.predict_grid(plans, profiles)
        assert grid.shape == (3, 2)
        for i, profile in enumerate(profiles):
            for j, plan in enumerate(plans):
                assert grid[i, j] == pytest.approx(
                    predictor.predict(plan, profile), abs=1e-6)
