"""Docs-surface lint: every user-facing surface must be documented.

Enumerate the CLI verbs from the real argument parser and the HTTP
endpoints from the serving layer's declarative route table, then fail
if any of them is missing from the user documentation (README.md +
docs/). New surface area cannot land undocumented — CI runs this in
the serving job.
"""

from __future__ import annotations

import argparse
import pathlib
import re

import pytest

from repro.cli import build_parser
from repro.serving.http import ROUTES

REPO = pathlib.Path(__file__).parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


@pytest.fixture(scope="module")
def docs_text() -> str:
    return "\n".join(path.read_text() for path in DOC_FILES)


def _cli_verbs() -> list[str]:
    parser = build_parser()
    actions = [a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction)]
    assert actions, "CLI has no subcommands?"
    return sorted(actions[0].choices)


class TestDocsCoverLiveSurface:
    def test_docs_exist(self):
        assert (REPO / "docs" / "API.md").exists()
        assert (REPO / "docs" / "OPERATIONS.md").exists()

    @pytest.mark.parametrize("verb", _cli_verbs())
    def test_every_cli_verb_documented(self, docs_text, verb):
        """Each verb must appear as an invocation (``repro <verb>``),
        not merely as an English word."""
        pattern = rf"repro {re.escape(verb)}\b"
        assert re.search(pattern, docs_text), (
            f"CLI verb {verb!r} is undocumented: no 'repro {verb}' "
            f"invocation found in README.md or docs/")

    @pytest.mark.parametrize(
        "route", ROUTES, ids=lambda r: f"{r.method}-{r.path}")
    def test_every_http_endpoint_documented(self, route):
        api = (REPO / "docs" / "API.md").read_text()
        assert route.path in api, (
            f"HTTP endpoint {route.method} {route.path} is missing from "
            f"docs/API.md")
        # The method must be named near the path (heading or table).
        assert re.search(
            rf"{route.method}\s+{re.escape(route.path)}", api), (
            f"docs/API.md never pairs {route.method} with {route.path}")

    def test_readme_links_the_handbook_and_api(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/OPERATIONS.md" in readme
        assert "docs/API.md" in readme

    def test_serving_example_is_referenced(self, docs_text):
        assert "examples/serving_client.py" in docs_text


class TestDocsMentionNoDeadSurface:
    """The reverse direction: docs must not advertise verbs or
    endpoints that do not exist (stale-flag drift)."""

    def test_no_unknown_cli_verbs_advertised(self, docs_text):
        known = set(_cli_verbs())
        # "repro <word>" occurrences in docs, filtering prose like
        # "repro serve flags" via the verb position only.
        advertised = set(re.findall(r"repro ([a-z][a-z0-9_-]+)\b",
                                    docs_text))
        prose_words = {"package", "serve"}  # "the repro package", etc.
        unknown = advertised - known - prose_words
        assert not unknown, f"docs advertise nonexistent verbs: {unknown}"

    def test_no_unknown_endpoints_advertised(self):
        api = (REPO / "docs" / "API.md").read_text()
        advertised = set(re.findall(r"^#+ (?:GET|POST) (/\S+)", api,
                                    flags=re.MULTILINE))
        known = {route.path for route in ROUTES}
        unknown = advertised - known
        assert not unknown, f"docs advertise nonexistent endpoints: {unknown}"
