"""Tests for the rule-based default plans and collection curation caps."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER, SparkSimulator
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.plan import analyze, default_plan, enumerate_plans, spark_default_plan
from repro.plan.enumerator import SPARK_NON_CBO_THRESHOLD
from repro.sql import parse
from repro.workload import CollectionConfig, DataCollector


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.15, seed=7)


FILTERED_JOIN = """select count(*) from title t, movie_companies mc
                   where t.id = mc.movie_id and mc.company_id < 60"""


class TestSparkDefaultPlan:
    def test_structure_is_valid(self, catalog):
        query = analyze(parse(FILTERED_JOIN), catalog)
        plan = spark_default_plan(query, catalog)
        assert plan.label == "spark-default"
        counts = plan.operator_counts()
        assert counts["FileScan"] == 2
        execute_plan(plan, catalog)  # must run

    def test_non_cbo_threshold_is_conservative(self):
        # 10 MB of real data / 6000x amplification.
        assert SPARK_NON_CBO_THRESHOLD == pytest.approx(10e6 / 6000.0)

    def test_ignores_filters_in_broadcast_decision(self, catalog):
        """A heavily filtered mid-size table would be broadcast by the
        CBO default but not by the non-CBO default (which sees the
        unfiltered base size)."""
        query = analyze(parse(FILTERED_JOIN), catalog)
        cbo = default_plan(query, catalog)
        non_cbo = spark_default_plan(query, catalog)
        assert "BroadcastHashJoin" in cbo.operator_counts()
        assert "SortMergeJoin" in non_cbo.operator_counts()

    def test_tiny_dimension_still_broadcast(self, catalog):
        sql = """select count(*) from title t, kind_type kt
                 where t.kind_id = kt.id"""
        query = analyze(parse(sql), catalog)
        plan = spark_default_plan(query, catalog)
        assert "BroadcastHashJoin" in plan.operator_counts()

    def test_default_often_beatable_by_candidates(self, catalog):
        """The oracle over enumerated candidates beats the non-CBO
        default on a filtered join — the Fig. 1 headroom."""
        query = analyze(parse(FILTERED_JOIN), catalog)
        default = spark_default_plan(query, catalog)
        execute_plan(default, catalog)
        plans = enumerate_plans(query, catalog)
        for plan in plans:
            execute_plan(plan, catalog)
        sim = SparkSimulator(seed=0)
        default_time = sim.execute_mean(default, PAPER_CLUSTER)
        oracle = min(sim.execute_mean(p, PAPER_CLUSTER) for p in plans)
        assert oracle < default_time


class TestCollectionCuration:
    def test_row_cap_skips_blowups(self, catalog):
        collector = DataCollector(
            catalog, SparkSimulator(seed=0),
            config=CollectionConfig(max_observed_rows=10))
        records = collector.collect([FILTERED_JOIN])
        assert not records
        assert "workload cap" in collector.skipped[0][1]

    def test_cost_cap_skips_slow_queries(self, catalog):
        collector = DataCollector(
            catalog, SparkSimulator(seed=0),
            config=CollectionConfig(max_baseline_cost_seconds=0.001))
        records = collector.collect([FILTERED_JOIN])
        assert not records
        assert "cost" in collector.skipped[0][1]

    def test_generous_caps_keep_queries(self, catalog):
        collector = DataCollector(
            catalog, SparkSimulator(seed=0),
            config=CollectionConfig(max_observed_rows=1e9,
                                    max_baseline_cost_seconds=1e9))
        records = collector.collect([FILTERED_JOIN])
        assert records
        assert not collector.skipped


class TestTrainerSchedule:
    def test_lr_decay_applied(self):
        from repro.core import RAAL, RAALConfig, Trainer, TrainerConfig
        from repro.eval.experiments import SMOKE, ExperimentPipeline
        from repro.core import variant

        pipe = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        samples = pipe.samples_for(variant("RAAL"), "train")[:40]
        config = pipe.base_model_config(variant("RAAL"))
        trainer = Trainer(RAAL(config), TrainerConfig(
            epochs=4, lr_decay_epochs=1, lr_decay_gamma=0.5, seed=0))
        result = trainer.fit(samples)
        assert len(result.train_losses) == 4
        assert np.isfinite(result.train_losses[-1])


class TestAQE:
    def test_observed_stats_match_engine(self, catalog):
        from repro.plan import observed_scan_stats
        query = analyze(parse(FILTERED_JOIN), catalog)
        stats = observed_scan_stats(query, catalog)
        mc_rows = stats["mc"][0]
        truth = (catalog.table("movie_companies").column("company_id") < 60).sum()
        assert mc_rows == float(truth)
        assert stats["t"][0] == float(catalog.table("title").row_count)

    def test_aqe_adapts_to_memory(self, catalog):
        from repro.plan import aqe_plan
        query = analyze(parse(FILTERED_JOIN), catalog)
        roomy = aqe_plan(query, catalog, PAPER_CLUSTER.with_memory(6.0))
        tight = aqe_plan(query, catalog, PAPER_CLUSTER.with_memory(0.05))
        assert "BroadcastHashJoin" in roomy.operator_counts()
        assert "SortMergeJoin" in tight.operator_counts()

    def test_aqe_plan_executes_correctly(self, catalog):
        from repro.plan import aqe_plan, default_plan
        query = analyze(parse(FILTERED_JOIN), catalog)
        adaptive = aqe_plan(query, catalog, PAPER_CLUSTER)
        reference = default_plan(query, catalog)
        a = execute_plan(adaptive, catalog).column("count(*)")[0]
        b = execute_plan(reference, catalog).column("count(*)")[0]
        assert a == b

    def test_aqe_avoids_broadcast_fallback(self, catalog):
        """By construction AQE's broadcast rule matches the simulator's
        fallback budget, so an AQE plan never hits the cliff."""
        from repro.plan import aqe_plan
        for mem in (0.5, 1.0, 2.0, 4.0):
            res = PAPER_CLUSTER.with_memory(mem)
            query = analyze(parse(FILTERED_JOIN), catalog)
            plan = aqe_plan(query, catalog, res)
            execute_plan(plan, catalog)
            from repro.cluster import SimulatorParams
            sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
            result = sim.execute(plan, res)
            assert not result.any_broadcast_fallback
