"""Concurrency coverage for the obs layer: EventLog and Tracer.

The telemetry primitives sit on the serving hot path of a threaded
deployment (bucket-parallel predict, the overload storm benchmarks), so
their bounded structures must stay consistent under real contention:
no lost tallies, no interleaved JSONL lines, rings bounded exactly at
capacity.
"""

from __future__ import annotations

import json
import threading

from repro.obs import EventLog, Tracer

THREADS = 8
EVENTS_PER_THREAD = 200


def _run_threads(target, n=THREADS):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "worker threads hung"


class TestEventLogConcurrency:
    def test_concurrent_emit_tallies_and_ring(self):
        log = EventLog(capacity=THREADS * EVENTS_PER_THREAD)

        def worker(tid: int) -> None:
            for i in range(EVENTS_PER_THREAD):
                log.emit(f"c{tid}", "tick", seq=i)

        _run_threads(worker)
        total = THREADS * EVENTS_PER_THREAD
        assert log.emitted == total
        counts = log.counts()
        assert sum(counts.values()) == total
        for tid in range(THREADS):
            assert counts[f"c{tid}.tick"] == EVENTS_PER_THREAD
        # Ring capacity equals the emission count: nothing evicted, and
        # each thread's events appear in its own emission order.
        records = log.events()
        assert len(records) == total
        for tid in range(THREADS):
            seqs = [r["seq"] for r in records if r["component"] == f"c{tid}"]
            assert seqs == sorted(seqs)

    def test_concurrent_emit_ring_eviction_keeps_cumulative_tallies(self):
        log = EventLog(capacity=32)

        def worker(tid: int) -> None:
            for i in range(EVENTS_PER_THREAD):
                log.emit("storm", "tick", tid=tid, seq=i)

        _run_threads(worker)
        total = THREADS * EVENTS_PER_THREAD
        assert len(log.events()) == 32          # ring stays bounded
        assert log.counts()["storm.tick"] == total  # tallies don't evict
        assert log.emitted == total

    def test_concurrent_emit_flushes_parseable_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), capacity=64)

        def worker(tid: int) -> None:
            for i in range(EVENTS_PER_THREAD):
                log.emit("io", "tick", tid=tid, seq=i)

        _run_threads(worker)
        log.close()
        # Per-event flush under the lock: every line is complete JSON,
        # none interleaved, and all of them made it to disk.
        lines = path.read_text().splitlines()
        assert len(lines) == THREADS * EVENTS_PER_THREAD
        per_thread: dict[int, list[int]] = {}
        for line in lines:
            record = json.loads(line)  # raises on a torn line
            per_thread.setdefault(record["tid"], []).append(record["seq"])
        for tid in range(THREADS):
            # File order preserves each thread's emission order.
            assert per_thread[tid] == sorted(per_thread[tid])
            assert len(per_thread[tid]) == EVENTS_PER_THREAD


class TestTracerConcurrency:
    def test_span_storm_ring_bounded_and_counted(self):
        tracer = Tracer(max_roots=64)
        spans_per_thread = 500

        def worker(tid: int) -> None:
            for i in range(spans_per_thread):
                with tracer.span(f"root-{tid}", seq=i):
                    with tracer.span("child"):
                        pass

        _run_threads(worker)
        total = THREADS * spans_per_thread
        # Only roots count: children are attached, not ring entries.
        assert tracer.finished_count == total
        roots = tracer.roots()
        assert len(roots) == 64                 # ring stays bounded
        for root in roots:
            assert root.end is not None
            assert [c.name for c in root.children] == ["child"]

    def test_nesting_stays_thread_local_under_contention(self):
        tracer = Tracer(max_roots=THREADS * 50)

        def worker(tid: int) -> None:
            for i in range(50):
                with tracer.span(f"outer-{tid}") as outer:
                    with tracer.span(f"inner-{tid}"):
                        pass
                    assert tracer.current is outer

        _run_threads(worker)
        # No cross-thread adoption: every root's children carry the
        # root's own thread id in their names.
        for root in tracer.roots():
            tid = root.name.split("-")[1]
            assert all(child.name == f"inner-{tid}"
                       for child in root.children)
