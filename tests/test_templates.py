"""Tests for query templates and the dynamic-allocation simulator mode."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.errors import DatasetError, SimulationError
from repro.plan import analyze, default_plan
from repro.sql import parse
from repro.workload import (
    QueryTemplate,
    job_style_templates,
    paper_section3_queries,
    render_template,
)


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.1, seed=7)


class TestTemplates:
    def test_paper_queries_render_and_analyze(self, catalog):
        for template in paper_section3_queries():
            sql = template.render(catalog)
            query = analyze(parse(sql), catalog)
            assert query.statement.has_aggregates

    def test_job_templates_render_and_analyze(self, catalog):
        for template in job_style_templates():
            analyze(parse(template.render(catalog)), catalog)

    def test_quantile_scaling_tracks_catalog(self):
        small = build_imdb_catalog(scale=0.05, seed=1)
        large = build_imdb_catalog(scale=0.3, seed=1)
        template = paper_section3_queries()[0]  # keyword_id < {kw}
        sql_small = template.render(small)
        sql_large = template.render(large)
        lit_small = float(sql_small.rsplit("<", 1)[1])
        lit_large = float(sql_large.rsplit("<", 1)[1])
        # Larger catalog -> larger keyword domain -> larger literal.
        assert lit_large > lit_small

    def test_selectivity_roughly_preserved_across_scales(self):
        template = paper_section3_queries()[0]
        fracs = []
        for scale in (0.05, 0.3):
            catalog = build_imdb_catalog(scale=scale, seed=1)
            query = analyze(parse(template.render(catalog)), catalog)
            plan = default_plan(query, catalog)
            execute_plan(plan, catalog)
            matched = plan.nodes()[0].obs_rows
            total = catalog.table("movie_keyword").row_count
            fracs.append(matched / total)
        assert abs(fracs[0] - fracs[1]) < 0.25

    def test_missing_binding_rejected(self, catalog):
        bad = QueryTemplate(
            name="bad", sql="select count(*) from title t where t.id < {x}",
            quantiles={})
        with pytest.raises(DatasetError):
            render_template(bad, catalog)

    def test_string_column_quantile_rejected(self, catalog):
        bad = QueryTemplate(
            name="bad", sql="select count(*) from title t where t.id < {x}",
            quantiles={"x": ("title", "title", 0.5)})
        with pytest.raises(DatasetError):
            render_template(bad, catalog)


class TestDynamicAllocation:
    @pytest.fixture(scope="class")
    def plan(self, catalog):
        sql = "select count(*) from cast_info ci where ci.role_id < 8"
        query = analyze(parse(sql), catalog)
        plan = default_plan(query, catalog)
        execute_plan(plan, catalog)
        return plan

    # class-level fixture needs module catalog
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_imdb_catalog(scale=0.1, seed=7)

    def test_invalid_allocation_rejected(self):
        with pytest.raises(SimulationError):
            SparkSimulator(params=SimulatorParams(allocation="elastic"))

    def test_dynamic_runtime_finite(self, plan):
        sim = SparkSimulator(params=SimulatorParams(
            noise_sigma=0.0, allocation="dynamic"))
        runtime = sim.execute(plan, PAPER_CLUSTER).runtime_seconds
        assert np.isfinite(runtime) and runtime > 0

    def test_dynamic_pays_acquisition_latency_on_short_stages(self, plan):
        static = SparkSimulator(params=SimulatorParams(
            noise_sigma=0.0, allocation="static"))
        dynamic = SparkSimulator(params=SimulatorParams(
            noise_sigma=0.0, allocation="dynamic",
            executor_acquire_latency=2.0))
        s = static.execute(plan, PAPER_CLUSTER).runtime_seconds
        d = dynamic.execute(plan, PAPER_CLUSTER).runtime_seconds
        assert d > s

    def test_dynamic_free_acquisition_at_most_static(self, plan):
        """With zero acquisition latency, dynamic allocation can only
        match or beat static (fewer executors -> less startup)."""
        static = SparkSimulator(params=SimulatorParams(
            noise_sigma=0.0, allocation="static"))
        dynamic = SparkSimulator(params=SimulatorParams(
            noise_sigma=0.0, allocation="dynamic",
            executor_acquire_latency=0.0))
        s = static.execute(plan, PAPER_CLUSTER).runtime_seconds
        d = dynamic.execute(plan, PAPER_CLUSTER).runtime_seconds
        assert d <= s + 1e-9

    def test_allocation_modes_share_noise_stream(self, plan):
        a = SparkSimulator(params=SimulatorParams(allocation="static"), seed=3)
        b = SparkSimulator(params=SimulatorParams(allocation="static"), seed=3)
        assert a.execute(plan, PAPER_CLUSTER).runtime_seconds == \
            b.execute(plan, PAPER_CLUSTER).runtime_seconds
