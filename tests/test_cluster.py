"""Tests for the cluster simulator: resources, stages, cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    MAX_CLUSTER,
    PAPER_CLUSTER,
    RESOURCE_FEATURE_NAMES,
    ResourceProfile,
    ResourceSampler,
    SimulatorParams,
    SparkSimulator,
    split_stages,
)
from repro.data import build_imdb_catalog
from repro.engine import execute_plan
from repro.errors import ResourceError, SimulationError
from repro.plan import analyze, default_plan, enumerate_plans, EnumeratorConfig
from repro.sql import parse


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.2, seed=3)


@pytest.fixture(scope="module")
def executed_plans(catalog):
    sql = """select count(*) from title t, movie_companies mc
             where t.id = mc.movie_id and mc.company_type_id > 1"""
    q = analyze(parse(sql), catalog)
    plans = enumerate_plans(q, catalog)
    for p in plans:
        execute_plan(p, catalog)
    return plans


@pytest.fixture(scope="module")
def smj_plan(executed_plans):
    return next(p for p in executed_plans if "SortMergeJoin" in p.operator_counts())


@pytest.fixture(scope="module")
def bhj_plan(executed_plans):
    return next(p for p in executed_plans
                if "BroadcastHashJoin" in p.operator_counts())


class TestResourceProfile:
    def test_defaults_valid(self):
        assert PAPER_CLUSTER.task_slots == 4

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ResourceError):
            ResourceProfile(executors=0)
        with pytest.raises(ResourceError):
            ResourceProfile(executor_memory_gb=0)
        with pytest.raises(ResourceError):
            ResourceProfile(nodes=0)
        with pytest.raises(ResourceError):
            ResourceProfile(network_throughput_mbps=-1)

    def test_task_slots_capped_by_physical_cores(self):
        res = ResourceProfile(nodes=1, cores_per_node=2, executors=8, executor_cores=4)
        assert res.task_slots == 2
        assert res.oversubscribed

    def test_memory_per_task_divides_by_cores(self):
        a = ResourceProfile(executor_cores=1, executor_memory_gb=4.0)
        b = ResourceProfile(executor_cores=4, executor_memory_gb=4.0)
        assert a.execution_memory_per_task == pytest.approx(
            4 * b.execution_memory_per_task)

    def test_features_normalized(self):
        feats = PAPER_CLUSTER.as_features()
        assert feats.shape == (len(RESOURCE_FEATURE_NAMES),)
        assert (feats >= 0).all() and (feats <= 1).all()

    def test_features_scale_with_memory(self):
        lo = PAPER_CLUSTER.with_memory(2.0).as_features()
        hi = PAPER_CLUSTER.with_memory(8.0).as_features()
        mem_idx = RESOURCE_FEATURE_NAMES.index("e_memory_gb")
        assert hi[mem_idx] == pytest.approx(4 * lo[mem_idx])

    def test_with_memory_copies(self):
        res = PAPER_CLUSTER.with_memory(2.0)
        assert res.executor_memory_gb == 2.0
        assert PAPER_CLUSTER.executor_memory_gb == 4.0

    def test_str_is_informative(self):
        assert "mem=4GB" in str(PAPER_CLUSTER)


class TestResourceSampler:
    def test_samples_within_choices(self):
        sampler = ResourceSampler()
        rng = np.random.default_rng(0)
        for profile in sampler.sample_many(50, rng):
            assert profile.executors in sampler.executor_choices
            assert profile.executor_cores in sampler.core_choices
            assert profile.executor_memory_gb in sampler.memory_choices_gb

    def test_sampling_is_varied(self):
        sampler = ResourceSampler()
        rng = np.random.default_rng(0)
        memories = {p.executor_memory_gb for p in sampler.sample_many(60, rng)}
        assert len(memories) >= 4

    def test_deterministic_given_rng(self):
        sampler = ResourceSampler()
        a = sampler.sample_many(5, np.random.default_rng(7))
        b = sampler.sample_many(5, np.random.default_rng(7))
        assert a == b


class TestStages:
    def test_single_table_plan_has_two_stages(self, catalog):
        q = analyze(parse("select count(*) from title t where t.id < 100"), catalog)
        plan = default_plan(q, catalog)
        execute_plan(plan, catalog)
        stages = split_stages(plan)
        # Map stage (scan + partial agg + exchange) and result stage.
        assert len(stages) == 2
        assert stages[-1].is_result_stage

    def test_smj_plan_has_shuffle_stages(self, smj_plan):
        stages = split_stages(smj_plan)
        boundaries = [s.boundary.op_name for s in stages if s.boundary is not None]
        assert boundaries.count("ExchangeHashPartition") == 2

    def test_bhj_plan_has_broadcast_stage(self, bhj_plan):
        stages = split_stages(bhj_plan)
        assert any(s.is_broadcast for s in stages)

    def test_children_listed_before_parents(self, smj_plan):
        stages = split_stages(smj_plan)
        positions = {id(s): i for i, s in enumerate(stages)}
        for stage in stages:
            for child in stage.children:
                assert positions[id(child)] < positions[id(stage)]

    def test_every_node_in_exactly_one_stage(self, smj_plan):
        stages = split_stages(smj_plan)
        staged = [id(n) for s in stages for n in s.nodes]
        assert sorted(staged) == sorted(id(n) for n in smj_plan.nodes())

    def test_stage_io_rows(self, smj_plan):
        stages = split_stages(smj_plan)
        for stage in stages:
            assert stage.input_rows() >= 0
            assert stage.output_rows() >= 0


class TestSimulator:
    def test_runtime_positive_and_finite(self, executed_plans):
        sim = SparkSimulator(seed=0)
        for plan in executed_plans:
            result = sim.execute(plan, PAPER_CLUSTER)
            assert np.isfinite(result.runtime_seconds)
            assert result.runtime_seconds > 0

    def test_deterministic_same_seed(self, smj_plan):
        a = SparkSimulator(seed=5).execute(smj_plan, PAPER_CLUSTER).runtime_seconds
        b = SparkSimulator(seed=5).execute(smj_plan, PAPER_CLUSTER).runtime_seconds
        assert a == b

    def test_noise_varies_between_runs(self, smj_plan):
        sim = SparkSimulator(seed=5)
        a = sim.execute(smj_plan, PAPER_CLUSTER, run_id=0).runtime_seconds
        b = sim.execute(smj_plan, PAPER_CLUSTER, run_id=1).runtime_seconds
        assert a != b

    def test_execute_mean_averages(self, smj_plan):
        sim = SparkSimulator(seed=5)
        mean = sim.execute_mean(smj_plan, PAPER_CLUSTER, runs=3)
        singles = [sim.execute(smj_plan, PAPER_CLUSTER, run_id=i).runtime_seconds
                   for i in range(3)]
        assert mean == pytest.approx(np.mean(singles))

    def test_execute_mean_rejects_zero_runs(self, smj_plan):
        with pytest.raises(SimulationError):
            SparkSimulator().execute_mean(smj_plan, PAPER_CLUSTER, runs=0)

    def test_unannotated_plan_rejected(self, catalog):
        q = analyze(parse("select count(*) from title t where t.id < 0"), catalog)
        from repro.plan.enumerator import _build_plan
        plan = _build_plan(q, catalog, ["t"], [], True, "raw")
        with pytest.raises(SimulationError):
            SparkSimulator().execute(plan, PAPER_CLUSTER)

    def test_more_executors_speed_up_large_scan(self, catalog):
        sql = "select count(*) from cast_info ci where ci.role_id < 8"
        q = analyze(parse(sql), catalog)
        plan = default_plan(q, catalog)
        execute_plan(plan, catalog)
        params = SimulatorParams(noise_sigma=0.0)
        sim = SparkSimulator(params=params)
        slow = sim.execute(plan, ResourceProfile(executors=1, executor_cores=1)).runtime_seconds
        fast = sim.execute(plan, ResourceProfile(executors=4, executor_cores=4)).runtime_seconds
        assert fast < slow

    def test_low_memory_triggers_broadcast_fallback(self, bhj_plan):
        params = SimulatorParams(noise_sigma=0.0)
        sim = SparkSimulator(params=params)
        tight = sim.execute(bhj_plan, PAPER_CLUSTER.with_memory(0.05))
        roomy = sim.execute(bhj_plan, PAPER_CLUSTER.with_memory(8.0))
        assert tight.any_broadcast_fallback
        assert not roomy.any_broadcast_fallback
        assert tight.runtime_seconds > roomy.runtime_seconds

    def test_low_memory_triggers_spill_on_smj(self, smj_plan):
        params = SimulatorParams(noise_sigma=0.0)
        sim = SparkSimulator(params=params)
        tight = sim.execute(smj_plan, PAPER_CLUSTER.with_memory(0.05))
        roomy = sim.execute(smj_plan, PAPER_CLUSTER.with_memory(8.0))
        assert tight.total_spilled_bytes > roomy.total_spilled_bytes

    def test_memory_effect_non_monotone_somewhere(self, executed_plans):
        # Paper Sec. III: adding memory does not always reduce cost.
        params = SimulatorParams(noise_sigma=0.0)
        sim = SparkSimulator(params=params)
        found_increase = False
        found_decrease = False
        for plan in executed_plans:
            times = [sim.execute(plan, PAPER_CLUSTER.with_memory(m)).runtime_seconds
                     for m in (1, 2, 3, 4, 5, 6)]
            diffs = np.diff(times)
            found_increase |= bool((diffs > 0).any())
            found_decrease |= bool((diffs < 0).any())
        assert found_increase and found_decrease

    def test_slower_disk_slows_scans(self, catalog):
        sql = "select count(*) from cast_info ci where ci.role_id < 8"
        q = analyze(parse(sql), catalog)
        plan = default_plan(q, catalog)
        execute_plan(plan, catalog)
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        fast = sim.execute(plan, ResourceProfile(disk_throughput_mbps=500)).runtime_seconds
        slow = sim.execute(plan, ResourceProfile(disk_throughput_mbps=30)).runtime_seconds
        assert slow > fast

    def test_slower_network_slows_shuffles(self, smj_plan):
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        fast = sim.execute(smj_plan, ResourceProfile(network_throughput_mbps=1000)).runtime_seconds
        slow = sim.execute(smj_plan, ResourceProfile(network_throughput_mbps=20)).runtime_seconds
        assert slow > fast

    def test_stage_times_sum_close_to_total(self, smj_plan):
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        result = sim.execute(smj_plan, PAPER_CLUSTER)
        stage_sum = sum(s.total_seconds for s in result.stage_times)
        assert result.runtime_seconds > stage_sum  # job overhead added

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from([1.0, 2.0, 4.0, 8.0]),
           st.sampled_from([1, 2, 4]),
           st.sampled_from([1, 2, 3, 4]))
    def test_property_runtime_finite_across_profiles(self, mem, cores, execs):
        plan = TestSimulator._shared_plan
        res = ResourceProfile(executors=execs, executor_cores=cores,
                              executor_memory_gb=mem)
        runtime = SparkSimulator(seed=0).execute(plan, res).runtime_seconds
        assert np.isfinite(runtime) and runtime > 0

    @pytest.fixture(autouse=True)
    def _stash_plan(self, executed_plans):
        TestSimulator._shared_plan = executed_plans[0]


class TestPlanFlip:
    QUERIES = [
        """select count(*) from title t, movie_companies mc
           where t.id = mc.movie_id and mc.company_id < 600
           and mc.company_type_id > 1""",
        """select count(*) from title t, movie_info_idx mi
           where t.id = mi.movie_id and mi.info_type_id < 20""",
        """select count(*) from title t, movie_keyword mk
           where t.id = mk.movie_id and mk.keyword_id < 120""",
        """select count(*) from title t, cast_info ci
           where t.id = ci.movie_id and ci.role_id < 5""",
    ]

    def _best_per_memory(self, catalog, sql):
        q = analyze(parse(sql), catalog)
        plans = enumerate_plans(q, catalog, EnumeratorConfig(max_plans=6))
        for p in plans:
            execute_plan(p, catalog)
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        best = []
        times_by_mem = []
        for mem in (0.5, 1, 2, 3, 4, 5, 6, 8):
            times = [sim.execute(p, PAPER_CLUSTER.with_memory(mem)).runtime_seconds
                     for p in plans]
            times_by_mem.append(times)
            best.append(int(np.argmin(times)))
        return best, times_by_mem

    def test_optimal_plan_flips_with_memory_for_some_query(self, catalog):
        """Paper Sec. III / Fig. 2(c): for some queries the cheapest
        physical plan changes as executor memory varies."""
        flips = [len(set(self._best_per_memory(catalog, sql)[0])) >= 2
                 for sql in self.QUERIES]
        assert any(flips), "no query's optimal plan flipped with memory"

    def test_plan_rankings_cross_with_memory(self, catalog):
        """Weaker invariant that must hold broadly: the relative order
        of at least one plan pair inverts across memory settings."""
        _, times_by_mem = self._best_per_memory(catalog, self.QUERIES[0])
        n = len(times_by_mem[0])
        crossed = False
        for i in range(n):
            for j in range(i + 1, n):
                signs = {np.sign(t[i] - t[j]) for t in times_by_mem}
                if 1.0 in signs and -1.0 in signs:
                    crossed = True
        assert crossed
