"""Tier-1 perf smoke: the fast path must not be slower than autograd.

A tiny-model, best-of-N timing comparison that fails fast if a change
regresses the graph-free forward below the autograd forward's
throughput — without running the full benchmark suite. Full numbers
live in ``benchmarks/test_inference_throughput.py``.
"""

import time

import numpy as np

from repro.core import RAAL, RAALConfig, Trainer, TrainerConfig
from repro.encoding import EncodedPlan


def _random_encoded(config, count, max_n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(3, max_n + 1))
        child = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            child[i, rng.integers(0, i)] = True
        out.append(EncodedPlan(
            node_features=rng.normal(size=(n, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim),
        ))
    return out


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fast_path_at_least_autograd_throughput():
    config = RAALConfig(node_dim=24, hidden_size=24, embedding_dim=24)
    trainer = Trainer(RAAL(config).eval(), TrainerConfig(batch_size=32))
    encoded = _random_encoded(config, count=96, max_n=14)

    # Warm both paths (BLAS thread pools, allocator) before timing.
    trainer.predict_seconds(encoded, fast=True)
    trainer.predict_seconds(encoded, fast=False)

    fast = _best_of(lambda: trainer.predict_seconds(encoded, fast=True))
    slow = _best_of(lambda: trainer.predict_seconds(encoded, fast=False))

    # The graph-free forward skips Tensor allocation and backward-closure
    # wiring entirely; it must at least match autograd throughput. The
    # 1.1 factor absorbs scheduler noise without hiding real regressions.
    assert fast <= slow * 1.1, (
        f"fast path ({fast * 1e3:.2f} ms) slower than autograd "
        f"({slow * 1e3:.2f} ms) on {len(encoded)} plans")
