"""Precision tiers: f64 bit-identity, f32/int8 equivalence, threading.

The contract under test (DESIGN.md "Precision-tiered inference"):

* the default f64 tier is **bit-identical** to the historical fast
  path — same arrays, same operation order;
* the f32 tier agrees with f64 within float32 rounding accumulated
  over the network (budget: 1e-4 relative in seconds space);
* the int8 tier agrees within the quantization error budget (0.5% per
  GEMM weight, ≤ 5% end-to-end in seconds space);
* the factored grid kernel is numerically equivalent to the pairwise
  path at every tier (same math, regrouped GEMMs);
* bucket-parallel execution changes nothing but wall-clock: outputs
  are bitwise equal to the single-thread run at the same tier;
* masked softmax entries produce no denormals at either dtype.
"""

import threading

import numpy as np
import pytest

from repro.core import RAAL, RAALBatch, RAALConfig
from repro.core.execution import BucketExecutor, collate_inference
from repro.errors import PredictionError, ShapeError
from repro.nn.arena import ScratchArena
from repro.nn.inference import _softmax, raal_forward_inference, raal_grid_inference
from repro.nn.precision import (
    PRECISIONS,
    inference_weights,
    invalidate_inference_cache,
    resolve_dtype,
    softmax_floor,
)
from repro.nn.quantize import QMAX, quantization_error, quantize_per_channel

#: Documented end-to-end tolerance budgets, log space (model output).
LOG_TOL = {"f64": 0.0, "f32": 1e-5, "int8": 0.05}

VARIANT_SWITCHES = {
    "RAAL": {},
    "NA-LSTM": {"use_node_attention": False},
    "RAAC": {"feature_layer": "cnn"},
    "no-resource-attention": {"use_resource_attention": False},
}


def small_config(seed=0, **switches) -> RAALConfig:
    return RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                      latent_dim=8, dense_sizes=(24, 12), dropout=0.0,
                      seed=seed, **switches)


def make_batch(config: RAALConfig, batch=6, n=9, seed=0) -> RAALBatch:
    rng = np.random.default_rng(seed)
    lengths = rng.integers(2, n + 1, size=batch)
    mask = np.zeros((batch, n), dtype=bool)
    child = np.zeros((batch, n, n), dtype=bool)
    for b, length in enumerate(lengths):
        mask[b, :length] = True
        for i in range(1, length):
            child[b, i, rng.integers(0, i)] = True
    return RAALBatch(
        node_features=rng.normal(size=(batch, n, config.node_dim)),
        child_mask=child,
        node_mask=mask,
        resources=rng.random((batch, config.resource_dim)),
        extras=rng.random((batch, config.extras_dim)),
    )


def eval_model(name, seed=0):
    model = RAAL(small_config(seed=seed, **VARIANT_SWITCHES[name]))
    model.eval()
    return model


# ---------------------------------------------------------------------------
# Quantization unit behavior
# ---------------------------------------------------------------------------
class TestQuantize:
    def test_roundtrip_error_bounded_per_channel(self):
        rng = np.random.default_rng(0)
        # Columns with wildly different magnitudes: per-channel scales
        # must keep each column's relative error at rounding level.
        w = rng.normal(size=(40, 12)) * (10.0 ** rng.integers(-3, 3, size=12))
        quantized = quantize_per_channel(w)
        err = quantization_error(w, quantized)
        assert err["max_rel"] <= 0.5 / QMAX + 1e-12
        assert quantized.q.dtype == np.int8
        assert np.abs(quantized.q).max() <= QMAX

    def test_zero_column_is_exact(self):
        w = np.zeros((5, 3))
        w[:, 1] = np.linspace(-1, 1, 5)
        deq = quantize_per_channel(w).dequantize(np.float64)
        assert np.all(deq[:, 0] == 0.0)
        assert np.all(deq[:, 2] == 0.0)

    def test_payload_smaller_than_float32(self):
        w = np.random.default_rng(1).normal(size=(64, 64))
        quantized = quantize_per_channel(w)
        assert quantized.nbytes < w.astype(np.float32).nbytes / 3

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            quantize_per_channel(np.zeros(4))


# ---------------------------------------------------------------------------
# Weight bundles
# ---------------------------------------------------------------------------
class TestInferenceWeights:
    def test_unknown_precision_rejected(self):
        with pytest.raises(PredictionError):
            resolve_dtype("f16")
        with pytest.raises(PredictionError):
            inference_weights(eval_model("RAAL"), "bf16")

    def test_f64_bundle_is_zero_copy_view(self):
        model = eval_model("RAAL")
        weights = inference_weights(model, "f64")
        assert weights.embedding_w is model.embedding.weight.data

    def test_cache_hit_and_invalidate_on_mutation(self):
        model = eval_model("RAAL")
        w1 = inference_weights(model, "f32")
        assert inference_weights(model, "f32") is w1  # fingerprint hit
        # In-place mutation (what Adam and load_state_dict do) must be
        # detected by the fingerprint without any explicit invalidation.
        model.embedding.weight.data += 0.5
        w2 = inference_weights(model, "f32")
        assert w2 is not w1
        assert not np.array_equal(w2.embedding_w, w1.embedding_w)
        invalidate_inference_cache(model)
        assert inference_weights(model, "f32") is not w2

    def test_int8_bundle_records_qerror_budget(self):
        weights = inference_weights(eval_model("RAAL"), "int8")
        assert weights.quantized_bytes > 0
        assert weights.qerror
        for name, err in weights.qerror.items():
            assert err["max_rel"] <= 0.5 / QMAX + 1e-12, name


# ---------------------------------------------------------------------------
# Forward equivalence across tiers
# ---------------------------------------------------------------------------
class TestPrecisionEquivalence:
    @pytest.mark.parametrize("name", sorted(VARIANT_SWITCHES))
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_forward_within_budget(self, name, precision):
        model = eval_model(name, seed=2)
        batch = make_batch(model.config, seed=3)
        reference = raal_forward_inference(model, batch)
        out = raal_forward_inference(
            model, batch, inference_weights(model, precision))
        if precision == "f64":
            assert np.array_equal(out, reference)  # bitwise
        else:
            assert out.dtype == np.float32  # no silent f64 upcast
            assert np.abs(out - reference).max() <= LOG_TOL[precision]

    @pytest.mark.parametrize("name", sorted(VARIANT_SWITCHES))
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_factored_grid_matches_pairwise(self, name, precision):
        model = eval_model(name, seed=4)
        batch = make_batch(model.config, batch=5, n=8, seed=5)
        rng = np.random.default_rng(6)
        profiles = rng.random((7, model.config.resource_dim))
        weights = inference_weights(model, precision)
        grid = raal_grid_inference(
            weights, batch.node_features, batch.child_mask,
            batch.node_mask, batch.extras, profiles)
        assert grid.shape == (7, 5)
        # Pairwise reference at the same tier: the factored kernel is
        # the same math with regrouped GEMMs, so agreement is at
        # rounding level of the execution dtype, not the tier budget.
        tol = 1e-12 if precision == "f64" else 1e-5
        for p in range(7):
            pairwise = raal_forward_inference(model, RAALBatch(
                node_features=batch.node_features,
                child_mask=batch.child_mask, node_mask=batch.node_mask,
                resources=np.tile(profiles[p], (5, 1)),
                extras=batch.extras), weights)
            assert np.abs(grid[p] - pairwise).max() <= tol


# ---------------------------------------------------------------------------
# Bucketed / threaded execution engine
# ---------------------------------------------------------------------------
def encoded_workload(config, count=23, seed=9):
    """Encoded-plan stand-ins with varying node counts."""
    from repro.encoding import EncodedPlan

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        k = int(rng.integers(2, 11))
        child = np.zeros((k, k), dtype=bool)
        for i in range(1, k):
            child[i, rng.integers(0, i)] = True
        out.append(EncodedPlan(
            node_features=rng.normal(size=(k, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim)))
    return out


class TestBucketExecutor:
    def test_threaded_matches_single_thread_bitwise(self):
        model = eval_model("RAAL", seed=1)
        encoded = encoded_workload(model.config)
        for precision in PRECISIONS:
            single = BucketExecutor(model, batch_size=4, precision=precision)
            with BucketExecutor(model, batch_size=4, precision=precision,
                                threads=4) as threaded:
                a, _ = single.predict_log(encoded)
                b, _ = threaded.predict_log(encoded)
            # Same buckets, same kernels — threading must not change
            # a single bit, only the wall-clock.
            assert np.array_equal(a, b), precision

    def test_threaded_grid_matches_single_thread_bitwise(self):
        model = eval_model("RAAL", seed=1)
        encoded = encoded_workload(model.config)
        profiles = np.random.default_rng(3).random(
            (6, model.config.resource_dim))
        single = BucketExecutor(model, batch_size=4, precision="f32")
        with BucketExecutor(model, batch_size=4, precision="f32",
                            threads=4) as threaded:
            a, _ = single.predict_log_grid(encoded, profiles)
            b, _ = threaded.predict_log_grid(encoded, profiles)
        assert np.array_equal(a, b)

    def test_autograd_fallback_requires_f64(self):
        model = eval_model("RAAL")
        encoded = encoded_workload(model.config, count=3)
        executor = BucketExecutor(model, batch_size=4, precision="f32")
        with pytest.raises(PredictionError):
            executor.predict_log(encoded, fast=False)

    def test_collate_inference_matches_training_collate(self):
        from repro.core.trainer import TrainingSample, collate

        model = eval_model("RAAL")
        encoded = encoded_workload(model.config, count=5)
        reference = collate([TrainingSample(e, 0.0) for e in encoded])
        batch = collate_inference(encoded, np.float64, arena=ScratchArena())
        assert np.array_equal(batch.node_features, reference.node_features)
        assert np.array_equal(batch.child_mask, reference.child_mask)
        assert np.array_equal(batch.node_mask, reference.node_mask)
        assert np.array_equal(batch.resources, reference.resources)
        assert np.array_equal(batch.extras, reference.extras)

    def test_arena_reuses_buffers(self):
        arena = ScratchArena()
        a = arena.empty("x", (4, 8), np.float32)
        bytes_after_first = arena.allocated_bytes
        b = arena.empty("x", (2, 8), np.float32)
        assert arena.allocated_bytes == bytes_after_first
        assert b.base is a.base  # same backing buffer
        z = arena.zeros("x", (3, 8), np.float32)
        assert np.all(z == 0)


# ---------------------------------------------------------------------------
# Softmax denormal / floor behavior (satellite: dtype-aware −200 fix)
# ---------------------------------------------------------------------------
class TestSoftmaxFloors:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_masked_entries_produce_no_denormals(self, dtype):
        tiny = np.finfo(dtype).tiny  # smallest *normal* magnitude
        scores = np.zeros((3, 200), dtype=dtype)
        scores[:, 1:] = np.asarray(-1e9, dtype=dtype)  # masked
        out = _softmax(scores, axis=-1)
        assert out.dtype == np.dtype(dtype)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)
        nonzero = out[out != 0.0]
        # Every surviving weight is a normal number: no slow denormal
        # arithmetic downstream of the masked softmax.
        assert np.all(np.abs(nonzero) >= tiny)

    def test_floor_values_documented(self):
        assert softmax_floor(np.float64) == -200.0
        assert softmax_floor(np.float32) == -60.0
        with pytest.raises(ShapeError):
            softmax_floor(np.int32)

    def test_f32_floor_survives_row_normalization(self):
        # exp(floor) divided by a full row of unmasked logits must stay
        # normal — the float64 floor (−200) would underflow to 0 in
        # float32 (exp(−200) ≈ 1e−87 << 1e−38).
        floor = softmax_floor(np.float32)
        value = np.exp(np.float32(floor)) / np.float32(200.0)
        assert value >= np.finfo(np.float32).tiny

    def test_float64_floor_unchanged(self):
        # The historical constant: f64 softmax behavior is bit-frozen.
        scores = np.array([[0.0, -300.0, -100.0]])
        out = _softmax(scores)
        expected = np.exp(np.array([0.0, -200.0, -100.0]))
        expected /= expected.sum()
        assert np.array_equal(out.ravel(), expected)


# ---------------------------------------------------------------------------
# Predictor-level integration (config plumbing + guarded chain)
# ---------------------------------------------------------------------------
class TestPredictorIntegration:
    @pytest.fixture(scope="class")
    def served(self):
        from repro.cluster import PAPER_CLUSTER
        from repro.core.predictor import CostPredictor, PredictorConfig
        from repro.core.trainer import Trainer, TrainerConfig, TrainingSample
        from repro.data import build_imdb_catalog
        from repro.encoding import PlanEncoder
        from repro.plan import analyze, enumerate_plans
        from repro.sql import parse
        from repro.text import Word2VecConfig

        catalog = build_imdb_catalog(scale=0.05, seed=3)
        sqls = [
            "select count(*) from movie_keyword mk where mk.keyword_id < 25",
            """select count(*) from title t, movie_companies mc
               where t.id = mc.movie_id and mc.company_type_id > 1""",
            """select count(*) from title t, movie_companies mc, movie_keyword mk
               where t.id = mc.movie_id and t.id = mk.movie_id
               and mc.company_id = 4 and mk.keyword_id < 25""",
        ]
        plans = []
        for sql in sqls:
            q = analyze(parse(sql), catalog)
            plans.extend(enumerate_plans(q, catalog)[:4])
        encoder = PlanEncoder.fit(
            plans, word2vec_config=Word2VecConfig(dim=12, epochs=2))
        profile = PAPER_CLUSTER
        config = RAALConfig(node_dim=encoder.node_dim,
                            hidden_size=16, embedding_dim=16, latent_dim=8,
                            dense_sizes=(24, 12), seed=0)
        trainer = Trainer(RAAL(config),
                          TrainerConfig(epochs=2, batch_size=4, seed=0))
        samples = [TrainingSample(encoder.encode(p, profile), 1.0 + i * 0.35)
                   for i, p in enumerate(plans)]
        trainer.fit(samples)
        return CostPredictor(encoder, trainer), plans, profile, PredictorConfig

    def test_default_config_is_legacy_behavior(self, served):
        predictor, plans, profile, PredictorConfig = served
        pairs = [(p, profile) for p in plans]
        default = predictor.predict_many(pairs)
        explicit = predictor.configured(PredictorConfig()).predict_many(pairs)
        assert np.array_equal(default, explicit)

    @pytest.mark.parametrize("precision", ["f32", "int8"])
    def test_precision_tiers_within_budget_seconds(self, served, precision):
        predictor, plans, profile, PredictorConfig = served
        pairs = [(p, profile) for p in plans]
        reference = predictor.predict_many(pairs)
        tiered = predictor.configured(
            PredictorConfig(precision=precision, threads=2))
        out = tiered.predict_many(pairs)
        rel = np.abs(out - reference) / np.maximum(np.abs(reference), 1e-9)
        # seconds-space budgets: expm1 amplifies log-space error by
        # roughly the cost magnitude, still far under the tier budgets.
        budget = 1e-4 if precision == "f32" else 0.05
        assert rel.max() <= budget

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_factored_grid_matches_pairwise_grid(self, served, precision):
        from repro.core.advisor import default_profile_grid

        predictor, plans, _, PredictorConfig = served
        profiles = default_profile_grid()[:5]
        pairwise = predictor.configured(
            PredictorConfig(precision=precision)).predict_grid(
                plans[:4], profiles)
        factored = predictor.configured(
            PredictorConfig(precision=precision, factor_grids=True)
        ).predict_grid(plans[:4], profiles)
        assert factored.shape == pairwise.shape
        rel = (np.abs(factored - pairwise)
               / np.maximum(np.abs(pairwise), 1e-9))
        assert rel.max() <= (1e-9 if precision == "f64" else 1e-4)

    @pytest.mark.parametrize("precision", ["f32", "int8"])
    def test_guarded_chain_uses_configured_precision(self, served, precision):
        from repro.reliability.guard import GuardedCostPredictor

        predictor, plans, profile, PredictorConfig = served
        pairs = [(p, profile) for p in plans]
        reference = predictor.predict_many(pairs)
        guarded = GuardedCostPredictor(
            predictor.configured(PredictorConfig(precision=precision)))
        result = guarded.predict_many_explained(pairs)
        assert result.source == "raal"
        rel = (np.abs(result.costs - reference)
               / np.maximum(np.abs(reference), 1e-9))
        assert rel.max() <= (1e-4 if precision == "f32" else 0.05)

    def test_invalid_precision_rejected_at_construction(self, served):
        predictor, _, _, PredictorConfig = served
        with pytest.raises(PredictionError):
            predictor.configured(PredictorConfig(precision="f8"))

    def test_concurrent_predict_many_is_safe(self, served):
        predictor, plans, profile, PredictorConfig = served
        tiered = predictor.configured(PredictorConfig(precision="f32",
                                                      threads=2))
        pairs = [(p, profile) for p in plans]
        expected = tiered.predict_many(pairs)
        results = [None] * 6
        errors = []

        def worker(i):
            try:
                results[i] = tiered.predict_many(pairs)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for out in results:
            assert np.array_equal(out, expected)
