"""Suite-wide fixtures and the CI telemetry hook.

When ``REPRO_TELEMETRY_PATH`` is set (the CI telemetry job exports it),
the whole test session runs under an attached telemetry bundle that
streams structured events to that path and appends a final
``telemetry_report`` event at session end — so CI can assert the
instrumentation emits parseable JSONL with the core metric names while
the normal tier-1 suite runs.
"""

from __future__ import annotations

from repro import obs

_SESSION_TELEMETRY: obs.Telemetry | None = None


def pytest_configure(config) -> None:
    global _SESSION_TELEMETRY
    _SESSION_TELEMETRY = obs.install_from_env()


def pytest_unconfigure(config) -> None:
    global _SESSION_TELEMETRY
    telemetry = _SESSION_TELEMETRY
    _SESSION_TELEMETRY = None
    if telemetry is None:
        return
    report = obs.TelemetryReport.from_telemetry(telemetry)
    telemetry.events.emit("obs", "telemetry_report", report=report.to_dict())
    telemetry.close()
    obs.detach()
