"""Unit and property tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AutogradError, ShapeError
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x.copy().reshape(x.shape))
        flat[i] = orig - eps
        minus = fn(x.copy().reshape(x.shape))
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(build, x0: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient of build(Tensor) against finite differences."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    analytic = t.grad

    def scalar_fn(arr):
        return build(Tensor(arr)).item()

    numeric = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_and_tolist(self):
        assert Tensor(3.5).item() == 3.5
        assert Tensor([[1.0, 2.0]]).tolist() == [[1.0, 2.0]]

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_zeros_ones(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0

    def test_detach_breaks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        assert y._parents == ()

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError):
            (x * 2).backward()

    def test_backward_on_detached_raises(self):
        x = Tensor([1.0])
        with pytest.raises(AutogradError):
            x.backward()

    def test_explicit_gradient_shape_checked(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3
        with pytest.raises(ShapeError):
            y.backward(np.ones(3))

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda t: (t + t + 1.0).sum(), np.array([1.0, -2.0, 3.0]))

    def test_mul(self):
        check_grad(lambda t: (t * t * 2.0).sum(), np.array([1.0, -2.0, 3.0]))

    def test_sub_and_neg(self):
        check_grad(lambda t: (3.0 - t - t).sum(), np.array([1.0, -2.0]))

    def test_div(self):
        check_grad(lambda t: (1.0 / t).sum(), np.array([1.0, 2.0, 4.0]))

    def test_pow(self):
        check_grad(lambda t: (t ** 3.0).sum(), np.array([1.0, 2.0, 0.5]))

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(AutogradError):
            x ** Tensor([2.0])

    def test_broadcast_add(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        out = (Tensor(a) + b).sum()
        out.backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_broadcast_mul_grad(self):
        col = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        mat = Tensor(np.ones((2, 4)))
        (col * mat).sum().backward()
        np.testing.assert_allclose(col.grad, [[4.0], [4.0]])

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None


class TestMatmulGradients:
    def test_matrix_matrix(self):
        rng = np.random.default_rng(1)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(4, 2))
        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (a @ b).sum().backward()
        na = numeric_grad(lambda arr: float((arr @ b0).sum()), a0.copy())
        nb = numeric_grad(lambda arr: float((a0 @ arr).sum()), b0.copy())
        np.testing.assert_allclose(a.grad, na, atol=1e-5)
        np.testing.assert_allclose(b.grad, nb, atol=1e-5)

    def test_batched_matmul(self):
        rng = np.random.default_rng(2)
        a0 = rng.normal(size=(5, 3, 4))
        b0 = rng.normal(size=(5, 4, 2))
        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        ((a @ b) ** 2.0).sum().backward()
        na = numeric_grad(lambda arr: float(((arr @ b0) ** 2).sum()), a0.copy())
        np.testing.assert_allclose(a.grad, na, atol=1e-4)
        nb = numeric_grad(lambda arr: float(((a0 @ arr) ** 2).sum()), b0.copy())
        np.testing.assert_allclose(b.grad, nb, atol=1e-4)

    def test_matrix_vector(self):
        rng = np.random.default_rng(3)
        a0 = rng.normal(size=(3, 4))
        v0 = rng.normal(size=4)
        a = Tensor(a0.copy(), requires_grad=True)
        v = Tensor(v0.copy(), requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile(v0, (3, 1)), atol=1e-12)
        np.testing.assert_allclose(v.grad, a0.sum(axis=0), atol=1e-12)

    def test_vector_matrix(self):
        rng = np.random.default_rng(4)
        v0 = rng.normal(size=3)
        b0 = rng.normal(size=(3, 2))
        v = Tensor(v0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (v @ b).sum().backward()
        np.testing.assert_allclose(v.grad, b0.sum(axis=1), atol=1e-12)
        np.testing.assert_allclose(b.grad, np.tile(v0[:, None], (1, 2)), atol=1e-12)

    def test_vector_vector(self):
        v = Tensor([1.0, 2.0], requires_grad=True)
        w = Tensor([3.0, 4.0], requires_grad=True)
        (v @ w).backward()
        np.testing.assert_allclose(v.grad, [3.0, 4.0])
        np.testing.assert_allclose(w.grad, [1.0, 2.0])

    def test_batched_matrix_times_shared_matrix(self):
        rng = np.random.default_rng(5)
        a0 = rng.normal(size=(6, 2, 3))
        b0 = rng.normal(size=(3, 4))
        b = Tensor(b0.copy(), requires_grad=True)
        (Tensor(a0) @ b).sum().backward()
        nb = numeric_grad(lambda arr: float((a0 @ arr).sum()), b0.copy())
        np.testing.assert_allclose(b.grad, nb, atol=1e-5)


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_elementwise_grads(self, name):
        x0 = np.array([0.5, -1.3, 2.1, -0.2])
        check_grad(lambda t: getattr(t, name)().sum(), x0)

    def test_log_grad(self):
        check_grad(lambda t: t.log().sum(), np.array([0.5, 1.5, 3.0]))

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt().sum(), np.array([1.0, 4.0, 9.0]))

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([1000.0, -1000.0])
        s = x.sigmoid().numpy()
        assert np.isfinite(s).all()
        assert s[0] == pytest.approx(1.0)
        assert s[1] == pytest.approx(0.0)

    def test_clip_grad_masks_outside(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        np.testing.assert_allclose(x.softmax(axis=-1).numpy().sum(axis=-1), np.ones(4))

    def test_softmax_grad(self):
        x0 = np.array([[0.3, -1.0, 2.0]])
        check_grad(lambda t: (t.softmax(axis=-1) * Tensor([[1.0, 2.0, 3.0]])).sum(), x0)

    def test_softmax_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = Tensor(x).softmax().numpy()
        b = Tensor(x + 100.0).softmax().numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_multiple_axes(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        x.sum(axis=(0, 2)).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean_grad(self):
        check_grad(lambda t: t.mean(), np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_max_global(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis_ties_split_gradient(self):
        x = Tensor([[2.0, 2.0], [1.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5], [0.0, 1.0]])

    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        (x.reshape(2, 3) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(6, 2.0))

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.T.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_transpose_axes(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_squeeze_and_expand_dims(self):
        x = Tensor(np.zeros((2, 1, 3)), requires_grad=True)
        y = x.squeeze(1).expand_dims(0)
        assert y.shape == (1, 2, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 1, 3)

    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 3.0))

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            Tensor.concat([])

    def test_stack_grad(self):
        parts = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = Tensor.stack(parts, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, np.ones(3))

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            Tensor.stack([])


class TestComposite:
    def test_deep_chain_gradcheck(self):
        rng = np.random.default_rng(7)
        x0 = rng.normal(size=(3, 4))

        def build(t):
            return ((t.tanh() @ Tensor(np.ones((4, 2)))).sigmoid() * 3.0).mean()

        check_grad(build, x0)

    def test_diamond_graph(self):
        x = Tensor([1.5], requires_grad=True)
        a = x * 2
        b = x.exp()
        (a * b).backward()
        expected = 2 * np.exp(1.5) + 2 * 1.5 * np.exp(1.5)
        np.testing.assert_allclose(x.grad, [expected])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=8))
    def test_property_square_sum_gradient(self, values):
        x0 = np.array(values, dtype=np.float64)
        x = Tensor(x0.copy(), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x0, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 4), st.integers(1, 4),
        st.floats(-2, 2), st.floats(-2, 2),
    )
    def test_property_linear_gradients(self, rows, cols, scale_a, scale_b):
        a0 = np.full((rows, cols), scale_a)
        b0 = np.full((rows, cols), scale_b)
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b0, atol=1e-9)
        np.testing.assert_allclose(b.grad, a0, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=10))
    def test_property_softmax_simplex(self, values):
        out = Tensor(np.array(values)).softmax().numpy()
        assert out.min() >= 0
        np.testing.assert_allclose(out.sum(), 1.0, atol=1e-9)
