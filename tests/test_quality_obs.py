"""Unit and integration tests for prediction-quality observability.

Covers ``repro.obs.quality`` (q-error math, the P² sketch, the
accuracy tracker, the drift detector's hysteretic state machine),
``repro.obs.audit`` (bounded ring, ground-truth attachment, JSONL
round-trips), ``repro.obs.slo`` (multi-window multi-burn-rate
alerting), the Chrome trace exporter, and the guarded predictor's
feedback loop (audit → quality → drift → ladder coupling) end to end
on a tiny trained model.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.errors import TelemetryError
from repro.obs import (
    DRIFT,
    SLO,
    STABLE,
    AccuracyTracker,
    AuditTrail,
    BurnRateConfig,
    DriftConfig,
    DriftDetector,
    P2Quantile,
    QualityConfig,
    SLOTracker,
    Telemetry,
    chrome_trace,
    load_audit_records,
    q_error,
)


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- q-error ----------------------------------------------------------------
class TestQError:
    def test_symmetric_and_floored_at_one(self):
        assert q_error(2.0, 4.0) == pytest.approx(2.0)
        assert q_error(4.0, 2.0) == pytest.approx(2.0)
        assert q_error(3.0, 3.0) == pytest.approx(1.0)

    def test_non_positive_inputs_stay_finite(self):
        assert math.isfinite(q_error(0.0, 1.0))
        assert q_error(0.0, 1.0) > 1e6

    def test_non_finite_inputs_are_nan(self):
        assert math.isnan(q_error(math.nan, 1.0))
        assert math.isnan(q_error(1.0, math.inf))


# -- P² sketch --------------------------------------------------------------
class TestP2Quantile:
    def test_small_sample_is_exact_empirical(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.value == pytest.approx(2.0)

    def test_tracks_known_distribution(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 100.0, size=5000)
        p50, p95 = P2Quantile(0.5), P2Quantile(0.95)
        for v in samples:
            p50.observe(float(v))
            p95.observe(float(v))
        assert p50.value == pytest.approx(np.quantile(samples, 0.5), abs=3.0)
        assert p95.value == pytest.approx(np.quantile(samples, 0.95), abs=3.0)

    def test_rejects_bad_construction_and_nan(self):
        with pytest.raises(TelemetryError):
            P2Quantile(0.0)
        with pytest.raises(TelemetryError):
            P2Quantile(1.0)
        sketch = P2Quantile(0.5)
        with pytest.raises(TelemetryError):
            sketch.observe(math.nan)
        assert math.isnan(P2Quantile(0.5).value)  # empty


# -- AccuracyTracker --------------------------------------------------------
class TestAccuracyTracker:
    def test_scoped_stats_and_metrics_export(self):
        telemetry = Telemetry.create()
        with obs.attached(telemetry):
            tracker = AccuracyTracker(QualityConfig(window=4))
            tracker.record(1.0, 2.0, tier="f64", workload="imdb")
            tracker.record(1.0, 1.0, tier="int8", workload="imdb")
        snap = tracker.snapshot()
        assert snap["overall"]["count"] == 2
        assert snap["by_tier"]["f64"]["last"] == pytest.approx(2.0)
        assert snap["by_tier"]["int8"]["last"] == pytest.approx(1.0)
        assert snap["by_workload"]["imdb"]["count"] == 2
        reg = telemetry.registry
        assert reg.get("quality.feedback_total").value == 2
        assert reg.get("quality.qerror_mean").value == pytest.approx(1.5)
        assert "quality.tier.f64.qerror_p95" in reg
        assert "quality.workload.imdb.qerror_p50" in reg
        assert reg.get("quality.qerror").count == 2

    def test_rolling_window_forgets_old_samples(self):
        tracker = AccuracyTracker(QualityConfig(window=3))
        for _ in range(5):
            tracker.record(1.0, 10.0)
        for _ in range(3):
            tracker.record(1.0, 1.0)
        rolling = tracker.rolling()
        assert rolling["count"] == 3
        assert rolling["mean"] == pytest.approx(1.0)
        # Lifetime stats still remember the bad era.
        assert tracker.snapshot()["overall"]["mean"] > 4.0

    def test_rejects_non_finite_pairs(self):
        telemetry = Telemetry.create()
        with obs.attached(telemetry):
            tracker = AccuracyTracker()
            assert math.isnan(tracker.record(math.nan, 1.0))
        assert tracker.count == 0
        assert tracker.snapshot()["rejected"] == 1
        assert telemetry.registry.get("quality.rejected_total").value == 1

    def test_sanitizes_scope_keys(self):
        tracker = AccuracyTracker()
        tracker.record(1.0, 1.0, workload="join heavy/ad-hoc")
        assert "join_heavy_ad_hoc" in tracker.snapshot()["by_workload"]


# -- DriftDetector ----------------------------------------------------------
def _drift_config(**overrides) -> DriftConfig:
    config = dict(reference_window=8, current_window=8, min_samples=4,
                  ratio_threshold=1.5, recover_ratio=1.2, consecutive=3,
                  hold_seconds=0.0, ph_threshold=0.0)
    config.update(overrides)
    return DriftConfig(**config)


class TestDriftDetector:
    def test_stable_on_consistent_accuracy(self):
        detector = DriftDetector(_drift_config(), clock=FakeClock())
        for _ in range(50):
            assert detector.update(1.1) is None
        assert detector.state == STABLE

    def test_ratio_breach_needs_consecutive_evaluations(self):
        telemetry = Telemetry.create()
        with obs.attached(telemetry):
            detector = DriftDetector(_drift_config(), clock=FakeClock())
            for _ in range(8):
                detector.update(1.1)          # builds the reference
            transitions = [detector.update(8.0) for _ in range(8)]
        assert "drift_detected" in transitions
        # Hysteresis: the first breaching samples do not flip the state.
        first = transitions.index("drift_detected")
        assert first >= 2
        assert detector.state == DRIFT
        assert "ratio breach" in detector.last_reason
        events = telemetry.events.events("quality", "drift_detected")
        assert len(events) == 1
        assert telemetry.registry.get("quality.drift_state").value == 1.0

    def test_single_outlier_does_not_flip(self):
        detector = DriftDetector(_drift_config(), clock=FakeClock())
        for _ in range(8):
            detector.update(1.1)
        detector.update(50.0)                  # one catastrophic sample
        for _ in range(10):
            detector.update(1.1)
        assert detector.state == STABLE

    def test_page_hinkley_catches_slow_creep(self):
        # A drift small enough to stay under the 1.5x window ratio, but
        # persistent: the cumulative PH statistic accumulates it.
        config = _drift_config(ratio_threshold=3.0, recover_ratio=1.05,
                               ph_delta=0.01, ph_threshold=2.0)
        detector = DriftDetector(config, clock=FakeClock())
        for _ in range(8):
            detector.update(1.05)
        transitions = [detector.update(1.45) for _ in range(60)]
        assert "drift_detected" in transitions
        assert "page-hinkley" in detector.last_reason

    def test_recovery_requires_calm_and_dwell_then_rebaselines(self):
        clock = FakeClock()
        detector = DriftDetector(
            _drift_config(hold_seconds=10.0), clock=clock)
        for _ in range(8):
            detector.update(1.0)
        while detector.state == STABLE:
            detector.update(9.0)
        # Calm samples before the dwell elapses must not recover.
        for _ in range(10):
            assert detector.update(1.0) is None
        assert detector.state == DRIFT
        clock.advance(11.0)
        transitions = [detector.update(1.0) for _ in range(10)]
        assert "drift_recovered" in transitions
        assert detector.state == STABLE
        assert detector.recoveries == 1
        # Rebaselined: the recovered accuracy is the new reference, so
        # staying there keeps the detector stable.
        for _ in range(20):
            detector.update(1.0)
        assert detector.state == STABLE

    def test_snapshot_and_reset(self):
        detector = DriftDetector(_drift_config(), clock=FakeClock())
        for _ in range(12):
            detector.update(1.2)
        snap = detector.snapshot()
        assert snap["state"] == STABLE
        assert snap["reference_samples"] == 8
        assert snap["ratio"] == pytest.approx(1.0, abs=0.05)
        detector.reset()
        assert detector.snapshot()["reference_samples"] == 0

    def test_config_validation(self):
        with pytest.raises(TelemetryError):
            DriftConfig(ratio_threshold=0.9)
        with pytest.raises(TelemetryError):
            DriftConfig(recover_ratio=2.0, ratio_threshold=1.5)
        with pytest.raises(TelemetryError):
            DriftConfig(min_samples=99, current_window=8)

    def test_tracker_feeds_detector(self):
        detector = DriftDetector(_drift_config(), clock=FakeClock())
        tracker = AccuracyTracker(QualityConfig(window=8), drift=detector)
        for _ in range(8):
            tracker.record(1.0, 1.0)
        for _ in range(10):
            tracker.record(1.0, 9.0)
        assert tracker.drift.state == DRIFT
        assert "drift" in tracker.snapshot()


# -- AuditTrail -------------------------------------------------------------
class TestAuditTrail:
    def test_record_observe_roundtrip_with_qerror(self):
        trail = AuditTrail(capacity=8, clock=FakeClock(100.0))
        rid = trail.next_request_id()
        assert rid == "req-000001"
        record = trail.record(rid, plan_fingerprint="abc", plan_nodes=5,
                              resources={"executors": 4}, tier="f64",
                              source="raal", latency_seconds=0.01,
                              prediction_seconds=2.0, workload="imdb")
        assert record.ts == 100.0
        updated = trail.observe(rid, 4.0)
        assert updated.observed_seconds == 4.0
        assert updated.q_error == pytest.approx(2.0)
        assert trail.get(rid).q_error == pytest.approx(2.0)

    def test_ring_bounded_with_index_cleanup(self):
        trail = AuditTrail(capacity=3)
        rids = [trail.next_request_id() for _ in range(5)]
        for rid in rids:
            trail.record(rid, prediction_seconds=1.0)
        assert len(trail) == 3
        assert trail.get(rids[0]) is None          # evicted + unindexed
        assert trail.get(rids[-1]) is not None
        # Late feedback for an evicted record is counted, not an error.
        assert trail.observe(rids[0], 1.0) is None
        assert trail.missed == 1

    def test_per_request_cap_truncates_batches(self):
        trail = AuditTrail(capacity=100, per_request_cap=2)
        rid = trail.next_request_id()
        kept = [trail.record(rid, index=i, prediction_seconds=1.0)
                for i in range(5)]
        assert sum(1 for r in kept if r is not None) == 2
        assert trail.truncated == 3
        assert len(trail) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        trail = AuditTrail(capacity=8)
        for _ in range(3):
            rid = trail.next_request_id()
            trail.record(rid, plan_fingerprint="fp", tier="f32",
                         source="raal", prediction_seconds=1.5)
            trail.observe(rid, 3.0)
        path = tmp_path / "audit.jsonl"
        assert trail.write_jsonl(str(path)) == 3
        loaded = load_audit_records(str(path))
        assert [r.request_id for r in loaded] == [
            "req-000001", "req-000002", "req-000003"]
        assert all(r.q_error == pytest.approx(2.0) for r in loaded)

    def test_load_from_telemetry_event_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry = Telemetry.create(events_path=str(path))
        with obs.attached(telemetry):
            trail = AuditTrail(capacity=8)
            rid = trail.next_request_id()
            trail.record(rid, plan_fingerprint="fp", tier="f64",
                         source="raal", prediction_seconds=2.0,
                         resources={"executors": 2})
            trail.observe(rid, 1.0)
            # Unrelated events must not confuse the loader.
            obs.emit_event("trainer", "epoch", loss=0.5)
        telemetry.close()
        records = load_audit_records(str(path))
        assert len(records) == 1
        assert records[0].request_id == rid
        assert records[0].resources == {"executors": 2.0}
        assert records[0].observed_seconds == 1.0
        assert records[0].q_error == pytest.approx(2.0)


# -- SLOTracker -------------------------------------------------------------
def _slo_tracker(clock, **overrides) -> SLOTracker:
    config = dict(fast_window_seconds=10.0, slow_window_seconds=60.0,
                  fast_burn=10.0, slow_burn=5.0)
    config.update(overrides)
    return SLOTracker([SLO("latency", threshold=0.1, objective=0.99)],
                      BurnRateConfig(**config), clock=clock)


class TestSLOTracker:
    def test_healthy_traffic_never_alerts(self):
        clock = FakeClock(1000.0)
        tracker = _slo_tracker(clock)
        for _ in range(200):
            tracker.record("latency", 0.01)
            clock.advance(0.25)
        assert tracker.alerting() == []
        assert tracker.snapshot()["latency"]["burn_fast"] == 0.0

    def test_sustained_badness_fires_once_and_clears(self):
        telemetry = Telemetry.create()
        clock = FakeClock(1000.0)
        with obs.attached(telemetry):
            tracker = _slo_tracker(clock)
            for _ in range(100):
                tracker.record("latency", 0.5)   # 100% bad, burn = 100x
                clock.advance(0.25)
            assert tracker.alerting() == ["latency"]
            snap = tracker.snapshot()["latency"]
            assert snap["alerts"] == 1           # latched, not re-fired
            assert snap["burn_fast"] == pytest.approx(100.0)
            # Healthy traffic drains the fast window; the alert clears.
            for _ in range(100):
                tracker.record("latency", 0.01)
                clock.advance(0.25)
            assert tracker.alerting() == []
        events = telemetry.events
        assert len(events.events("slo", "burn_alert")) == 1
        assert len(events.events("slo", "burn_alert_cleared")) == 1
        assert telemetry.registry.get("slo.alerts_total").value == 1

    def test_short_blip_suppressed_by_slow_window(self):
        clock = FakeClock(1000.0)
        # Long healthy history, then a short 100%-bad blip: the fast
        # window burns but the slow window stays under its threshold.
        tracker = _slo_tracker(clock, slow_burn=50.0)
        for _ in range(230):
            tracker.record("latency", 0.01)
            clock.advance(0.25)
        for _ in range(8):
            tracker.record("latency", 0.5)
            clock.advance(0.25)
        assert tracker.alerting() == []

    def test_evaluate_clears_after_quiet_period(self):
        clock = FakeClock(1000.0)
        tracker = _slo_tracker(clock)
        for _ in range(100):
            tracker.record("latency", 0.5)
            clock.advance(0.25)
        assert tracker.alerting() == ["latency"]
        clock.advance(30.0)                      # fast window drains empty
        tracker.evaluate()
        assert tracker.alerting() == []

    def test_unknown_slo_raises(self):
        tracker = _slo_tracker(FakeClock())
        with pytest.raises(TelemetryError):
            tracker.record("nope", 1.0)


# -- Chrome trace export ----------------------------------------------------
class TestChromeTrace:
    def test_spans_flatten_with_per_root_lanes(self):
        spans = [
            {"name": "req-a", "start": 1.0, "duration": 0.5,
             "annotations": {"pairs": 4},
             "children": [{"name": "encode", "start": 1.1, "duration": 0.2,
                           "annotations": {}, "children": []}]},
            {"name": "req-b", "start": 1.2, "duration": 0.1,
             "annotations": {}, "children": []},
        ]
        doc = chrome_trace(spans)
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["req-a", "encode", "req-b"]
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["ts"] == pytest.approx(1.0e6)
        assert events[0]["dur"] == pytest.approx(0.5e6)
        assert events[0]["args"] == {"pairs": 4}
        assert events[1]["tid"] == 0              # child shares its root lane
        assert events[2]["tid"] == 1              # second root gets its own

    def test_unfinished_spans_are_skipped(self):
        spans = [{"name": "active", "start": 1.0, "duration": None,
                  "annotations": {}, "children": []}]
        assert chrome_trace(spans)["traceEvents"] == []

    def test_report_and_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        telemetry = Telemetry.create()
        with obs.attached(telemetry):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        report = obs.TelemetryReport.from_telemetry(telemetry)
        artifact = tmp_path / "report.json"
        report.write(artifact)
        assert main(["metrics", str(artifact), "--format", "trace"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["outer", "inner"]
        assert doc["displayTimeUnit"] == "ms"


# -- the guarded feedback loop, end to end ----------------------------------
from repro.baselines.gpsj import GPSJCostModel  # noqa: E402
from repro.core.predictor import CostPredictor  # noqa: E402
from repro.eval.experiments import SMOKE, ExperimentPipeline  # noqa: E402
from repro.reliability import (  # noqa: E402
    DegradationLadder,
    FaultInjector,
    GuardedCostPredictor,
    LadderConfig,
)


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


@pytest.fixture(scope="module")
def pair(pipeline):
    record = pipeline.records[0]
    return (record.plan, record.resources)


def _feedback_guard(trained, pipeline, **overrides):
    """A guard with the full quality loop armed on fast windows."""
    drift = DriftDetector(DriftConfig(
        reference_window=8, current_window=8, min_samples=4,
        ratio_threshold=1.5, recover_ratio=1.2, consecutive=3,
        ph_threshold=0.0))
    quality = AccuracyTracker(QualityConfig(window=16), drift=drift)
    slo = SLOTracker(
        [SLO("latency", threshold=10.0, objective=0.9),
         SLO("qerror", threshold=2.0, objective=0.9)],
        BurnRateConfig(fast_window_seconds=60.0, slow_window_seconds=600.0,
                       fast_burn=1.0, slow_burn=1.0))
    kwargs = dict(
        gpsj=GPSJCostModel(pipeline.catalog),
        ladder=DegradationLadder(LadderConfig(hold_seconds=30.0)),
        quality=quality, audit=AuditTrail(capacity=64),
        slo=slo, workload="imdb")
    kwargs.update(overrides)
    predictor = CostPredictor(trained.encoder, trained.trainer)
    return GuardedCostPredictor(predictor, **kwargs)


class TestGuardedFeedbackLoop:
    def test_serve_writes_audit_with_request_id(self, trained, pipeline, pair):
        guard = _feedback_guard(trained, pipeline)
        explained = guard.predict_explained(*pair)
        assert explained.source == "raal"
        assert explained.request_id == "req-000001"
        record = guard.audit.get(explained.request_id)
        assert record is not None
        assert record.source == "raal"
        assert record.tier == "f64"
        assert record.workload == "imdb"
        assert record.plan_fingerprint
        assert record.plan_nodes == pair[0].num_nodes
        assert record.resources["executors"] == pair[1].executors
        assert record.prediction_seconds == pytest.approx(explained.seconds)
        assert record.latency_seconds is not None

    def test_record_observation_closes_the_loop(self, trained, pipeline, pair):
        guard = _feedback_guard(trained, pipeline)
        explained = guard.predict_explained(*pair)
        qe = guard.record_observation(explained.request_id,
                                      explained.seconds * 2.0)
        assert qe == pytest.approx(2.0)
        assert guard.quality.count == 1
        snap = guard.quality.snapshot()
        assert snap["by_tier"]["f64"]["count"] == 1
        assert snap["by_workload"]["imdb"]["count"] == 1
        # Unknown request ids are counted, not raised.
        assert guard.record_observation("req-999999", 1.0) is None

    def test_batched_request_observed_per_index(self, trained, pipeline):
        guard = _feedback_guard(trained, pipeline)
        pairs = [(r.plan, r.resources) for r in pipeline.records[:3]]
        explained = guard.predict_many_explained(pairs)
        for i in range(len(pairs)):
            qe = guard.record_observation(explained.request_id,
                                          float(explained.costs[i]), index=i)
            assert qe == pytest.approx(1.0)
        assert guard.quality.count == len(pairs)

    def test_drift_trips_ladder_to_fallback(self, trained, pipeline, pair):
        telemetry = Telemetry.create()
        with obs.attached(telemetry):
            guard = _feedback_guard(trained, pipeline)
            # Healthy feedback builds the reference window.
            for _ in range(8):
                explained = guard.predict_explained(*pair)
                guard.record_observation(explained.request_id,
                                         explained.seconds)
            assert guard.quality.drift.state == STABLE
            # The world shifts: observed runtimes now 8x the prediction.
            served = 0
            while guard.ladder.state != "fallback" and served < 20:
                explained = guard.predict_explained(*pair)
                if explained.source != "raal":
                    break
                guard.record_observation(explained.request_id,
                                         explained.seconds * 8.0)
                served += 1
        assert guard.quality.drift.state == DRIFT
        assert guard.ladder.state == "fallback"
        assert any("drift trip" in t.reason for t in guard.ladder.history)
        assert telemetry.events.events("quality", "drift_detected")
        assert telemetry.registry.get("ladder.drift_trips_total").value >= 1
        # While tripped, the chain serves the analytic fallback.
        explained = guard.predict_explained(*pair)
        assert explained.source == "gpsj"
        assert "ladder in fallback" in explained.reason
        # The q-error SLO burned its budget on the drifting samples.
        assert "qerror" in guard.slo.alerting()
        health = guard.health_state()
        assert health["quality"]["drift"]["state"] == DRIFT
        assert health["slo"]["qerror"]["alerting"] is True
        assert health["audit"]["observed_total"] >= 8

    def test_fallback_answers_skip_quality_but_feed_slo(self, trained,
                                                        pipeline, pair):
        from repro.nn import invalidate_inference_cache

        guard = _feedback_guard(trained, pipeline, ladder=None)
        model = guard.predictor.trainer.model
        injector = FaultInjector(seed=3)
        saved = [p.data.copy() for _, p in model.named_parameters()]
        injector.corrupt_weights(model)
        invalidate_inference_cache(model)
        try:
            explained = guard.predict_explained(*pair)
            assert explained.source == "gpsj"
            qe = guard.record_observation(explained.request_id,
                                          explained.seconds * 3.0)
        finally:
            for (_, p), data in zip(model.named_parameters(), saved):
                p.data[...] = data
            invalidate_inference_cache(model)
        # The audit record closed with a q-error and the SLO saw it, but
        # the tracker (which measures the learned model) did not.
        assert qe == pytest.approx(3.0)
        assert guard.quality.count == 0
        assert guard.slo.snapshot()["qerror"]["bad"] == 1

    def test_record_observation_requires_audit(self, trained, pipeline, pair):
        from repro.errors import PredictionError

        guard = _feedback_guard(trained, pipeline, audit=None)
        with pytest.raises(PredictionError, match="AuditTrail"):
            guard.record_observation("req-000001", 1.0)


class TestPredictorFeedbackAPI:
    def test_lazy_tracker_and_tier_default(self, trained, pair):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        assert predictor.quality is None
        qe = predictor.record_observation(2.0, 4.0)
        assert qe == pytest.approx(2.0)
        assert predictor.quality is not None
        assert "f64" in predictor.quality.snapshot()["by_tier"]

    def test_configured_shares_the_tracker(self, trained):
        from dataclasses import replace

        predictor = CostPredictor(trained.encoder, trained.trainer)
        predictor.record_observation(1.0, 1.0)
        tiered = predictor.configured(
            replace(predictor.config, precision="f32"))
        tiered.record_observation(1.0, 2.0)
        snap = predictor.quality.snapshot()
        assert snap["overall"]["count"] == 2
        assert set(snap["by_tier"]) == {"f64", "f32"}
