"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Column, DataType, TableSchema
from repro.data.statistics import compute_table_statistics
from repro.eval.metrics import correlation, r_squared, relative_error
from repro.text.tokenize import tokenize_statement


class TestStatisticsProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
           st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_range_selectivity_always_in_unit_interval(self, values, a, b):
        schema = TableSchema("t", [Column("x", DataType.FLOAT)])
        stats = compute_table_statistics(schema, {"x": np.array(values)})
        lo, hi = min(a, b), max(a, b)
        sel = stats.column("x").selectivity_range(lo, hi)
        assert 0.0 <= sel <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200),
           st.integers(-10, 60))
    def test_eq_selectivity_in_unit_interval(self, values, probe):
        schema = TableSchema("t", [Column("x", DataType.INT)])
        stats = compute_table_statistics(
            schema, {"x": np.array(values, dtype=np.float64)})
        sel = stats.column("x").selectivity_eq(float(probe))
        assert 0.0 <= sel <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=5, max_size=300))
    def test_full_range_selectivity_near_one(self, values):
        schema = TableSchema("t", [Column("x", DataType.INT)])
        stats = compute_table_statistics(
            schema, {"x": np.array(values, dtype=np.float64)})
        sel = stats.column("x").selectivity_range(None, None)
        assert sel >= 0.8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 100), min_size=2, max_size=100))
    def test_wider_ranges_never_less_selective(self, values):
        schema = TableSchema("t", [Column("x", DataType.FLOAT)])
        stats = compute_table_statistics(schema, {"x": np.array(values)})
        col = stats.column("x")
        narrow = col.selectivity_range(25.0, 50.0)
        wide = col.selectivity_range(0.0, 100.0)
        assert wide >= narrow - 1e-9


class TestTokenizerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abcdefghij_.()<>=&| 0123456789'", max_size=80))
    def test_tokenizer_never_crashes(self, text):
        tokens = tokenize_statement(text)
        assert all(isinstance(t, str) and t for t in tokens)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(1e-6, 1e9))
    def test_number_tokens_bounded_vocabulary(self, value):
        tokens = tokenize_statement(f"x > {value:.6f}")
        num_tokens = [t for t in tokens if t.startswith("<num:")]
        assert len(num_tokens) == 1
        # Magnitude bucket ids stay within a small fixed range.
        assert len(num_tokens[0]) <= 12


class TestMetricProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 1e4), min_size=2, max_size=60),
           st.floats(1.01, 10.0))
    def test_scaling_prediction_degrades_re(self, actual, factor):
        actual = np.array(actual)
        exact = relative_error(actual, actual)
        scaled = relative_error(actual, actual * factor)
        assert scaled >= exact

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 1e4), min_size=3, max_size=60))
    def test_correlation_scale_invariant(self, actual):
        actual = np.array(actual)
        noise = np.random.default_rng(0).normal(size=len(actual))
        est = actual + noise
        a = correlation(actual, est)
        b = correlation(actual, est * 7.5)
        assert a == pytest.approx(b, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1.0, 100.0), min_size=3, max_size=40))
    def test_r2_at_most_one(self, actual):
        actual = np.array(actual)
        est = actual * 0.9 + 1.0
        assert r_squared(actual, est) <= 1.0 + 1e-12
