"""Tests for the micro-model (CLEO/Microlearner-style) baseline."""

import numpy as np
import pytest

from repro.baselines import MicroCostModel, MicroModelConfig
from repro.cluster import PAPER_CLUSTER
from repro.errors import TrainingError
from repro.eval import compute_metrics
from repro.eval.experiments import SMOKE, ExperimentPipeline


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def fitted(pipeline):
    return MicroCostModel().fit(pipeline.split.train)


class TestMicroCostModel:
    def test_unfitted_predict_rejected(self, pipeline):
        record = pipeline.records[0]
        with pytest.raises(TrainingError):
            MicroCostModel().predict(record.plan, record.resources)

    def test_fit_empty_rejected(self):
        with pytest.raises(TrainingError):
            MicroCostModel().fit([])

    def test_predictions_positive_finite(self, pipeline, fitted):
        est = fitted.predict_records(pipeline.split.test[:20])
        assert (est >= 0).all() and np.isfinite(est).all()

    def test_per_operator_models_fitted(self, fitted):
        assert fitted.num_operator_models >= 5

    def test_rare_operators_fall_back(self, pipeline):
        config = MicroModelConfig(min_records_per_operator=10 ** 9)
        model = MicroCostModel(config).fit(pipeline.split.train)
        assert model.num_operator_models == 0
        record = pipeline.records[0]
        assert model.predict(record.plan, record.resources) >= 0

    def test_learns_coarse_cost_scale(self, pipeline, fitted):
        """The micro-model should at least order cheap vs expensive
        records on the training set."""
        train = pipeline.split.train
        actual = np.array([r.cost_seconds for r in train])
        est = fitted.predict_records(train)
        cheap = actual < np.median(actual)
        assert est[cheap].mean() < est[~cheap].mean()

    def test_resource_sensitivity(self, pipeline, fitted):
        """Predictions respond to the resource features."""
        from dataclasses import replace
        record = pipeline.records[0]
        lo = fitted.predict(record.plan, PAPER_CLUSTER.with_memory(1.0))
        hi = fitted.predict(record.plan, PAPER_CLUSTER.with_memory(6.0))
        assert lo != hi

    def test_comparable_at_smoke_scale(self, pipeline, fitted):
        """At smoke scale the end-to-end model should at least stay in
        the micro-model's league (the decisive comparison runs at bench
        scale in benchmarks/test_table6_vs_gpsj.py)."""
        raal = pipeline.train_variant("RAAL", epochs=8)
        actual = np.array([r.cost_seconds for r in pipeline.split.test])
        micro_metrics = compute_metrics(
            actual, fitted.predict_records(pipeline.split.test))
        assert np.isfinite(micro_metrics.mse)
        assert raal.metrics.mse <= micro_metrics.mse * 3.0
