"""Tests for the resource advisor (cost model run in reverse)."""

import numpy as np
import pytest

from repro.core import (
    AllocationPrice,
    CostPredictor,
    ResourceAdvisor,
    default_profile_grid,
)
from repro.cluster import ResourceProfile
from repro.errors import PlanError
from repro.eval.experiments import SMOKE, ExperimentPipeline


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def advisor(pipeline):
    trained = pipeline.train_variant("RAAL", epochs=5)
    return ResourceAdvisor(CostPredictor(trained.encoder, trained.trainer))


@pytest.fixture(scope="module")
def plans(pipeline):
    return pipeline.collector.plans_for(pipeline.queries[0])


class TestAllocationPrice:
    def test_hourly_price_scales_with_resources(self):
        price = AllocationPrice()
        small = ResourceProfile(executors=1, executor_cores=1, executor_memory_gb=1.0)
        big = ResourceProfile(executors=4, executor_cores=4, executor_memory_gb=6.0)
        assert price.hourly(big) > price.hourly(small)

    def test_known_value(self):
        price = AllocationPrice(per_core_hour=1.0, per_gb_hour=0.5)
        profile = ResourceProfile(executors=2, executor_cores=2, executor_memory_gb=4.0)
        assert price.hourly(profile) == pytest.approx(4 * 1.0 + 8 * 0.5)


class TestProfileGrid:
    def test_grid_size_and_validity(self):
        grid = default_profile_grid()
        assert len(grid) == 4 * 3 * 4
        assert all(p.executors >= 1 for p in grid)

    def test_grid_inherits_base_throughputs(self):
        base = ResourceProfile(network_throughput_mbps=999.0)
        grid = default_profile_grid(base)
        assert all(p.network_throughput_mbps == 999.0 for p in grid)


class TestAdvisor:
    def test_sla_recommendation_meets_sla(self, advisor, plans):
        rec = advisor.cheapest_meeting_sla(plans, sla_seconds=1e9)
        assert rec is not None
        assert rec.predicted_seconds <= 1e9
        assert rec.plan in plans

    def test_impossible_sla_returns_none(self, advisor, plans):
        assert advisor.cheapest_meeting_sla(plans, sla_seconds=1e-6) is None

    def test_tighter_sla_never_cheaper(self, advisor, plans):
        loose = advisor.cheapest_meeting_sla(plans, sla_seconds=1e9)
        costs = advisor.predictor.predict_many(
            [(plans[0], p) for p in default_profile_grid()])
        mid_sla = float(np.median(costs))
        tight = advisor.cheapest_meeting_sla(plans, sla_seconds=mid_sla)
        if tight is not None:
            assert tight.hourly_price >= loose.hourly_price - 1e-9

    def test_budget_recommendation_within_budget(self, advisor, plans):
        rec = advisor.fastest_within_budget(plans, max_hourly_price=1e9)
        assert rec is not None
        assert rec.hourly_price <= 1e9

    def test_zero_budget_returns_none(self, advisor, plans):
        assert advisor.fastest_within_budget(plans, max_hourly_price=0.0) is None

    def test_bigger_budget_never_slower(self, advisor, plans):
        small = advisor.fastest_within_budget(plans, max_hourly_price=0.15)
        large = advisor.fastest_within_budget(plans, max_hourly_price=10.0)
        if small is not None and large is not None:
            assert large.predicted_seconds <= small.predicted_seconds + 1e-9

    def test_empty_plans_rejected(self, advisor):
        with pytest.raises(PlanError):
            advisor.cheapest_meeting_sla([], sla_seconds=10)

    def test_empty_profiles_rejected(self, advisor, plans):
        with pytest.raises(PlanError):
            advisor.cheapest_meeting_sla(plans, sla_seconds=10, profiles=[])

    def test_predicted_cost_dollars(self, advisor, plans):
        rec = advisor.cheapest_meeting_sla(plans, sla_seconds=1e9)
        expected = rec.hourly_price * rec.predicted_seconds / 3600.0
        assert rec.predicted_cost_dollars == pytest.approx(expected)
