"""Tests for model persistence: word2vec, the full cost predictor, and
checkpoint integrity (manifest verification under fault injection)."""

import json

import numpy as np
import pytest

from repro.core import (
    CostPredictor,
    load_predictor,
    save_predictor,
    variant,
    verify_checkpoint,
)
from repro.core.persistence import CHECKPOINT_SCHEMA_VERSION
from repro.errors import CheckpointError, TrainingError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.reliability import FaultInjector
from repro.text import Word2Vec, Word2VecConfig


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


class TestWord2VecPersistence:
    @pytest.fixture(scope="class")
    def model(self):
        sentences = [["filter", "x", ">", "<num:1e2>"],
                     ["scan", "table_b", "bytes"]] * 30
        return Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=1)).train(sentences)

    def test_roundtrip_vectors(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        for token in ("filter", "scan", "<num:1e2>"):
            np.testing.assert_array_equal(model.vector(token), restored.vector(token))

    def test_roundtrip_vocab_ids(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        assert restored.vocab.id_of("filter") == model.vocab.id_of("filter")
        assert restored.vocab.id_of("never_seen") == 0

    def test_roundtrip_config(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        assert restored.config == model.config

    def test_untrained_save_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            Word2Vec().save(tmp_path / "x.npz")


class TestPredictorPersistence:
    def test_roundtrip_predictions(self, pipeline, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        record = pipeline.records[0]
        before = predictor.predict(record.plan, record.resources)
        save_predictor(predictor, tmp_path / "model")
        restored = load_predictor(tmp_path / "model")
        after = restored.predict(record.plan, record.resources)
        assert before == pytest.approx(after, abs=1e-9)

    def test_roundtrip_many(self, pipeline, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        pairs = [(r.plan, r.resources) for r in pipeline.records[:6]]
        before = predictor.predict_many(pairs)
        save_predictor(predictor, tmp_path / "model")
        after = load_predictor(tmp_path / "model").predict_many(pairs)
        np.testing.assert_allclose(before, after, atol=1e-9)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            load_predictor(tmp_path / "nope")

    def test_persisted_files_exist(self, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        save_predictor(predictor, tmp_path / "model")
        assert (tmp_path / "model" / "meta.json").exists()
        assert (tmp_path / "model" / "model.npz").exists()
        assert (tmp_path / "model" / "word2vec.npz").exists()

    def test_onehot_predictor_roundtrip(self, pipeline, tmp_path):
        tv = pipeline.train_variant("OH-LSTM", epochs=2)
        predictor = CostPredictor(tv.encoder, tv.trainer)
        record = pipeline.records[0]
        before = predictor.predict(record.plan, record.resources)
        save_predictor(predictor, tmp_path / "oh")
        assert not (tmp_path / "oh" / "word2vec.npz").exists()
        after = load_predictor(tmp_path / "oh").predict(record.plan, record.resources)
        assert before == pytest.approx(after, abs=1e-9)


@pytest.fixture()
def saved_dir(pipeline, trained, tmp_path):
    """A freshly saved checkpoint directory, private to each test."""
    predictor = CostPredictor(trained.encoder, trained.trainer)
    path = tmp_path / "model"
    save_predictor(predictor, path)
    return path


class TestCheckpointIntegrity:
    def test_manifest_written_and_verifies(self, saved_dir):
        manifest = json.loads((saved_dir / "manifest.json").read_text())
        assert manifest["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        assert set(manifest["files"]) == {"meta.json", "model.npz", "word2vec.npz"}
        report = verify_checkpoint(saved_dir)
        assert report.ok
        assert "OK" in report.summary()

    def test_no_temp_files_left_behind(self, saved_dir):
        leftovers = [p.name for p in saved_dir.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_truncated_model_detected_and_named(self, saved_dir):
        FaultInjector().truncate_file(saved_dir / "model.npz", keep_fraction=0.5)
        report = verify_checkpoint(saved_dir)
        assert not report.ok
        assert "model.npz" in report.corrupt
        with pytest.raises(CheckpointError, match="model.npz"):
            load_predictor(saved_dir)

    def test_truncated_model_fails_even_non_strict(self, saved_dir):
        FaultInjector().truncate_file(saved_dir / "model.npz", keep_fraction=0.3)
        with pytest.raises(CheckpointError, match="model.npz"):
            with pytest.warns(UserWarning):
                load_predictor(saved_dir, strict=False)

    def test_bit_rot_caught_by_checksum(self, saved_dir):
        FaultInjector(seed=5).flip_bytes(saved_dir / "word2vec.npz", count=8)
        report = verify_checkpoint(saved_dir)
        assert "word2vec.npz" in report.corrupt

    def test_missing_word2vec_named_in_error(self, saved_dir):
        (saved_dir / "word2vec.npz").unlink()
        report = verify_checkpoint(saved_dir)
        assert report.missing == ["word2vec.npz"]
        with pytest.raises(CheckpointError, match="word2vec.npz"):
            load_predictor(saved_dir)

    def test_missing_manifest_strict_rejected_non_strict_recovers(
            self, saved_dir, pipeline):
        (saved_dir / "manifest.json").unlink()
        with pytest.raises(CheckpointError, match="manifest"):
            load_predictor(saved_dir)
        with pytest.warns(UserWarning, match="manifest"):
            restored = load_predictor(saved_dir, strict=False)
        record = pipeline.records[0]
        assert np.isfinite(restored.predict(record.plan, record.resources))

    def test_stale_schema_strict_rejected_non_strict_recovers(
            self, saved_dir, pipeline):
        manifest_path = saved_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="schema"):
            load_predictor(saved_dir)
        with pytest.warns(UserWarning, match="schema"):
            restored = load_predictor(saved_dir, strict=False)
        record = pipeline.records[0]
        assert np.isfinite(restored.predict(record.plan, record.resources))

    def test_garbled_manifest_reported(self, saved_dir):
        (saved_dir / "manifest.json").write_text("{not json")
        report = verify_checkpoint(saved_dir)
        assert "manifest.json" in report.corrupt

    def test_corrupt_meta_named(self, saved_dir):
        (saved_dir / "meta.json").write_text('{"model_config": {}}')
        with pytest.raises(CheckpointError, match="meta.json"):
            with pytest.warns(UserWarning):
                load_predictor(saved_dir, strict=False)

    def test_missing_directory_reports_cleanly(self, tmp_path):
        report = verify_checkpoint(tmp_path / "never-saved")
        assert not report.ok
        assert "does not exist" in " ".join(report.notes)

    def test_resave_refreshes_manifest(self, saved_dir, pipeline, trained):
        # Saving again over the same directory keeps verification green.
        predictor = CostPredictor(trained.encoder, trained.trainer)
        save_predictor(predictor, saved_dir)
        assert verify_checkpoint(saved_dir).ok

    def test_roundtrip_after_recovery_matches_strict_load(
            self, saved_dir, pipeline):
        strict = load_predictor(saved_dir)
        (saved_dir / "manifest.json").unlink()
        with pytest.warns(UserWarning):
            recovered = load_predictor(saved_dir, strict=False)
        record = pipeline.records[0]
        assert strict.predict(record.plan, record.resources) == pytest.approx(
            recovered.predict(record.plan, record.resources), abs=1e-9)
