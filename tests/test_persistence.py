"""Tests for model persistence: word2vec and the full cost predictor."""

import numpy as np
import pytest

from repro.core import CostPredictor, load_predictor, save_predictor, variant
from repro.errors import TrainingError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.text import Word2Vec, Word2VecConfig


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


class TestWord2VecPersistence:
    @pytest.fixture(scope="class")
    def model(self):
        sentences = [["filter", "x", ">", "<num:1e2>"],
                     ["scan", "table_b", "bytes"]] * 30
        return Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=1)).train(sentences)

    def test_roundtrip_vectors(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        for token in ("filter", "scan", "<num:1e2>"):
            np.testing.assert_array_equal(model.vector(token), restored.vector(token))

    def test_roundtrip_vocab_ids(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        assert restored.vocab.id_of("filter") == model.vocab.id_of("filter")
        assert restored.vocab.id_of("never_seen") == 0

    def test_roundtrip_config(self, model, tmp_path):
        path = tmp_path / "w2v.npz"
        model.save(path)
        restored = Word2Vec.load(path)
        assert restored.config == model.config

    def test_untrained_save_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            Word2Vec().save(tmp_path / "x.npz")


class TestPredictorPersistence:
    def test_roundtrip_predictions(self, pipeline, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        record = pipeline.records[0]
        before = predictor.predict(record.plan, record.resources)
        save_predictor(predictor, tmp_path / "model")
        restored = load_predictor(tmp_path / "model")
        after = restored.predict(record.plan, record.resources)
        assert before == pytest.approx(after, abs=1e-9)

    def test_roundtrip_many(self, pipeline, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        pairs = [(r.plan, r.resources) for r in pipeline.records[:6]]
        before = predictor.predict_many(pairs)
        save_predictor(predictor, tmp_path / "model")
        after = load_predictor(tmp_path / "model").predict_many(pairs)
        np.testing.assert_allclose(before, after, atol=1e-9)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            load_predictor(tmp_path / "nope")

    def test_persisted_files_exist(self, trained, tmp_path):
        predictor = CostPredictor(trained.encoder, trained.trainer)
        save_predictor(predictor, tmp_path / "model")
        assert (tmp_path / "model" / "meta.json").exists()
        assert (tmp_path / "model" / "model.npz").exists()
        assert (tmp_path / "model" / "word2vec.npz").exists()

    def test_onehot_predictor_roundtrip(self, pipeline, tmp_path):
        tv = pipeline.train_variant("OH-LSTM", epochs=2)
        predictor = CostPredictor(tv.encoder, tv.trainer)
        record = pipeline.records[0]
        before = predictor.predict(record.plan, record.resources)
        save_predictor(predictor, tmp_path / "oh")
        assert not (tmp_path / "oh" / "word2vec.npz").exists()
        after = load_predictor(tmp_path / "oh").predict(record.plan, record.resources)
        assert before == pytest.approx(after, abs=1e-9)
