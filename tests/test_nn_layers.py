"""Tests for repro.nn layers, RNNs, attention, losses, and optimizers."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn import (
    LSTM,
    SGD,
    Adam,
    Conv1d,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    LSTMCell,
    Module,
    NodeAwareAttention,
    ReLU,
    ResourceAwareAttention,
    Sequential,
    StepLR,
    Tensor,
    clip_grad_norm,
    huber_loss,
    load_model,
    mae_loss,
    mse_loss,
    q_error,
    save_model,
)
from repro.nn.functional import log_softmax, masked_mean, one_hot, pad_sequences


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_parameters(self, rng):
        layer = Linear(4, 2, rng)
        out = layer(Tensor(rng.normal(size=(3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_learns_identity_map(self, rng):
        layer = Linear(2, 2, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        x = rng.normal(size=(64, 2))
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(x))
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3


class TestModuleProtocol:
    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 1, rng))
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears(self, rng):
        layer = Linear(2, 2, rng)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 3, rng)
        b = Linear(3, 3, np.random.default_rng(7))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        a = Linear(3, 3, rng)
        with pytest.raises(ShapeError):
            a.load_state_dict({"weight": np.zeros((3, 3))})  # missing bias

    def test_save_load_file(self, rng, tmp_path):
        model = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        path = tmp_path / "model.npz"
        save_model(model, path)
        clone = Sequential(Linear(3, 4, np.random.default_rng(1)), Linear(4, 2, np.random.default_rng(2)))
        load_model(clone, path)
        x = Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_allclose(layer(x).numpy(), x.numpy())

    def test_training_zeroes_roughly_p_fraction(self, rng):
        layer = Dropout(0.3, rng)
        out = layer(Tensor(np.ones((200, 200)))).numpy()
        zero_frac = (out == 0).mean()
        assert 0.25 < zero_frac < 0.35

    def test_inverted_scaling_preserves_mean(self, rng):
        layer = Dropout(0.4, rng)
        out = layer(Tensor(np.ones((500, 500)))).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self, rng):
        with pytest.raises(ShapeError):
            Dropout(1.0, rng)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng)
        with pytest.raises(ShapeError):
            emb(np.array([10]))

    def test_gradients_scatter_to_rows(self, rng):
        emb = Embedding(5, 3, rng)
        emb(np.array([1, 1, 2])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[1], np.full(3, 2.0))
        np.testing.assert_allclose(grad[0], np.zeros(3))


class TestLayerNorm:
    def test_output_normalized(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(2.0, 3.0, size=(5, 8)))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=1e-2)

    def test_backward_runs(self, rng):
        ln = LayerNorm(4)
        ln(Tensor(rng.normal(size=(3, 4)), requires_grad=True)).sum().backward()
        assert ln.gamma.grad is not None


class TestConv1d:
    def test_output_shape(self, rng):
        conv = Conv1d(6, 8, 3, rng)
        out = conv(Tensor(rng.normal(size=(2, 10, 6))))
        assert out.shape == (2, 8, 8)

    def test_wrong_channels_raises(self, rng):
        conv = Conv1d(6, 8, 3, rng)
        with pytest.raises(ShapeError):
            conv(Tensor(rng.normal(size=(2, 10, 5))))

    def test_too_short_sequence_raises(self, rng):
        conv = Conv1d(4, 2, 5, rng)
        with pytest.raises(ShapeError):
            conv(Tensor(rng.normal(size=(1, 3, 4))))

    def test_matches_manual_convolution(self, rng):
        conv = Conv1d(1, 1, 2, rng)
        x = np.arange(5.0).reshape(1, 5, 1)
        out = conv(Tensor(x)).numpy().ravel()
        w = conv.weight.data.ravel()
        b = conv.bias.data[0]
        expected = [x[0, t, 0] * w[0] + x[0, t + 1, 0] * w[1] + b for t in range(4)]
        np.testing.assert_allclose(out, expected)


class TestLSTM:
    def test_cell_step_shapes(self, rng):
        cell = LSTMCell(3, 6, rng)
        h, c = cell.initial_state(4)
        h2, c2 = cell(Tensor(rng.normal(size=(4, 3))), (h, c))
        assert h2.shape == (4, 6)
        assert c2.shape == (4, 6)

    def test_cell_rejects_bad_input_size(self, rng):
        cell = LSTMCell(3, 6, rng)
        with pytest.raises(ShapeError):
            cell(Tensor(rng.normal(size=(4, 5))), cell.initial_state(4))

    def test_sequence_output_shape(self, rng):
        lstm = LSTM(3, 6, rng)
        out, (h, c) = lstm(Tensor(rng.normal(size=(2, 7, 3))))
        assert out.shape == (2, 7, 6)
        assert h.shape == (2, 6)

    def test_rejects_non_3d(self, rng):
        lstm = LSTM(3, 6, rng)
        with pytest.raises(ShapeError):
            lstm(Tensor(rng.normal(size=(2, 3))))

    def test_mask_freezes_state_on_padding(self, rng):
        lstm = LSTM(2, 4, rng)
        x = rng.normal(size=(1, 5, 2))
        mask = np.array([[True, True, True, False, False]])
        _, (h_masked, _) = lstm(Tensor(x), mask=mask)
        _, (h_short, _) = lstm(Tensor(x[:, :3, :]))
        np.testing.assert_allclose(h_masked.numpy(), h_short.numpy(), atol=1e-12)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 5, rng)
        np.testing.assert_allclose(cell.bias.data[5:10], np.ones(5))

    def test_learns_to_sum_sequence(self, rng):
        # An LSTM + linear head should learn to output the sum of a short
        # sequence of scalars — a basic sanity check of end-to-end training.
        lstm = LSTM(1, 16, rng)
        head = Linear(16, 1, rng)
        params = lstm.parameters() + head.parameters()
        opt = Adam(params, lr=0.01)
        data_rng = np.random.default_rng(0)
        losses = []
        for _ in range(150):
            x = data_rng.uniform(-1, 1, size=(32, 4, 1))
            y = x.sum(axis=1)
            opt.zero_grad()
            _, (h, _) = lstm(Tensor(x))
            loss = mse_loss(head(h), Tensor(y))
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < 0.1 * np.mean(losses[:10])


class TestAttention:
    def test_node_attention_shapes(self, rng):
        attn = NodeAwareAttention(6, 4, rng)
        hidden = Tensor(rng.normal(size=(3, 5, 6)))
        child = np.zeros((3, 5, 5), dtype=bool)
        child[:, 2, 0] = child[:, 2, 1] = True
        mask = np.ones((3, 5), dtype=bool)
        assert attn(hidden, child, mask).shape == (3, 6)

    def test_node_attention_rejects_bad_mask(self, rng):
        attn = NodeAwareAttention(6, 4, rng)
        hidden = Tensor(rng.normal(size=(3, 5, 6)))
        with pytest.raises(ShapeError):
            attn(hidden, np.zeros((3, 4, 4), bool), np.ones((3, 5), bool))

    def test_leaf_nodes_fall_back_to_self(self, rng):
        attn = NodeAwareAttention(4, 4, rng)
        hidden_arr = rng.normal(size=(1, 3, 4))
        hidden = Tensor(hidden_arr)
        child = np.zeros((1, 3, 3), dtype=bool)  # no children anywhere
        mask = np.ones((1, 3), dtype=bool)
        out = attn(hidden, child, mask).numpy()
        np.testing.assert_allclose(out, hidden_arr.mean(axis=1), atol=1e-9)

    def test_attention_weights_respect_children_only(self, rng):
        attn = NodeAwareAttention(4, 4, rng)
        h = rng.normal(size=(1, 4, 4))
        child = np.zeros((1, 4, 4), dtype=bool)
        child[0, 3, 0] = True  # only node 0 is a child of node 3
        mask = np.ones((1, 4), dtype=bool)
        out = attn(Tensor(h), child, mask).numpy()
        # The context of node 3 must be exactly h[0] (softmax over one entry),
        # all other nodes contribute themselves; the pooled mean is known.
        expected = (h[0, 0] + h[0, 0] + h[0, 1] + h[0, 2]) / 4.0
        np.testing.assert_allclose(out[0], expected, atol=1e-9)

    def test_resource_attention_shapes(self, rng):
        attn = ResourceAwareAttention(6, 3, 4, rng)
        hidden = Tensor(rng.normal(size=(2, 5, 6)))
        res = Tensor(rng.random((2, 3)))
        assert attn(hidden, res, np.ones((2, 5), bool)).shape == (2, 6)

    def test_resource_attention_ignores_padding(self, rng):
        attn = ResourceAwareAttention(4, 2, 4, rng)
        h = rng.normal(size=(1, 4, 4))
        res = rng.random((1, 2))
        mask_full = np.array([[True, True, False, False]])
        out1 = attn(Tensor(h), Tensor(res), mask_full).numpy()
        h2 = h.copy()
        h2[0, 2:] = 999.0  # garbage in padded slots must not matter
        out2 = attn(Tensor(h2), Tensor(res), mask_full).numpy()
        np.testing.assert_allclose(out1, out2, atol=1e-9)

    def test_resource_attention_dim_check(self, rng):
        attn = ResourceAwareAttention(4, 2, 4, rng)
        with pytest.raises(ShapeError):
            attn(Tensor(rng.normal(size=(1, 3, 4))), Tensor(rng.random((1, 5))), np.ones((1, 3), bool))


class TestLosses:
    def test_mse_known_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mae_known_value(self):
        loss = mae_loss(Tensor([1.0, -3.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_huber_between_mse_and_mae_for_large_errors(self):
        pred = Tensor([10.0])
        target = Tensor([0.0])
        assert huber_loss(pred, target).item() < mse_loss(pred, target).item()

    def test_q_error_perfect_prediction(self):
        q = q_error(Tensor([2.0, 5.0]), Tensor([2.0, 5.0]))
        assert q.item() == pytest.approx(1.0, abs=1e-6)

    def test_q_error_symmetric(self):
        a = q_error(Tensor([4.0]), Tensor([2.0])).item()
        b = q_error(Tensor([2.0]), Tensor([4.0])).item()
        assert a == pytest.approx(b)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            mse_loss(Tensor([1.0]), Tensor([1.0, 2.0]))


class TestOptim:
    def test_sgd_quadratic_descent(self):
        x = Tensor([5.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert abs(x.item()) < 1e-3

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            x = Tensor([5.0], requires_grad=True)
            opt = SGD([x], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (x * x).sum().backward()
                opt.step()
            return abs(x.item())

        assert run(0.9) < run(0.0)

    def test_adam_rosenbrock_like(self):
        x = Tensor([0.0, 0.0], requires_grad=True)
        opt = Adam([x], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            a = x[0] - 1.0
            b = x[1] - x[0] * x[0]
            (a * a + 10.0 * b * b).backward()
            opt.step()
        np.testing.assert_allclose(x.data, [1.0, 1.0], atol=0.05)

    def test_weight_decay_shrinks_weights(self):
        x = Tensor([1.0], requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (x * 0.0).sum().backward()
        opt.step()
        assert x.item() < 1.0

    def test_empty_parameters_raises(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(TrainingError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_step_lr_schedule(self):
        x = Tensor([1.0], requires_grad=True)
        opt = SGD([x], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clip_grad_norm(self):
        x = Tensor([3.0, 4.0], requires_grad=True)
        (x * x).sum().backward()  # grad = (6, 8), norm 10
        norm = clip_grad_norm([x], max_norm=5.0)
        assert norm == pytest.approx(10.0)
        np.testing.assert_allclose(np.linalg.norm(x.grad), 5.0)

    def test_clip_noop_when_under_limit(self):
        x = Tensor([0.1], requires_grad=True)
        (x * x).sum().backward()
        grad_before = x.grad.copy()
        clip_grad_norm([x], max_norm=100.0)
        np.testing.assert_allclose(x.grad, grad_before)


class TestFunctional:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_pad_sequences(self):
        seqs = [np.ones((2, 3)), np.ones((4, 3))]
        padded, mask = pad_sequences(seqs)
        assert padded.shape == (2, 4, 3)
        assert mask.sum() == 6
        np.testing.assert_allclose(padded[0, 2:], np.zeros((2, 3)))

    def test_pad_sequences_max_len_too_small(self):
        with pytest.raises(ShapeError):
            pad_sequences([np.ones((5, 2))], max_len=3)

    def test_pad_sequences_inconsistent_dims(self):
        with pytest.raises(ShapeError):
            pad_sequences([np.ones((2, 3)), np.ones((2, 4))])

    def test_masked_mean(self):
        x = Tensor(np.array([[[1.0], [3.0], [100.0]]]))
        mask = np.array([[True, True, False]])
        np.testing.assert_allclose(masked_mean(x, mask).numpy(), [[2.0]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        np.testing.assert_allclose(
            log_softmax(x).numpy(), np.log(x.softmax().numpy()), atol=1e-9
        )
