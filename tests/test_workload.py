"""Tests for repro.workload: query generation, collection, splits."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER, ResourceSampler, SparkSimulator
from repro.core import variant
from repro.data import build_imdb_catalog, build_tpch_catalog
from repro.errors import DatasetError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.plan import analyze
from repro.sql import parse
from repro.sql.ast import LikePredicate, Comparison
from repro.workload import (
    CollectionConfig,
    DataCollector,
    QueryGenerator,
    WorkloadConfig,
    split_by_query,
)


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


class TestQueryGenerator:
    def test_generates_parseable_analyzable_sql(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(max_joins=3), seed=1)
        for sql in gen.generate(20):
            query = analyze(parse(sql), catalog)  # must not raise
            assert query.statement.has_aggregates

    def test_join_count_within_bounds(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(min_joins=1, max_joins=4), seed=2)
        for sql in gen.generate(20):
            stmt = parse(sql)
            assert 2 <= len(stmt.tables) <= 5

    def test_zero_join_queries_possible(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(min_joins=0, max_joins=0), seed=3)
        for sql in gen.generate(5):
            assert len(parse(sql).tables) == 1

    def test_numeric_workload_has_no_string_predicates(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(workload="numeric"), seed=4)
        for sql in gen.generate(25):
            stmt = parse(sql)
            for pred in stmt.filters:
                assert not isinstance(pred, LikePredicate)
                if isinstance(pred, Comparison):
                    assert not pred.value.is_string

    def test_string_workload_produces_string_predicates(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(workload="string"), seed=5)
        found = False
        for sql in gen.generate(40):
            stmt = parse(sql)
            for pred in stmt.filters:
                if isinstance(pred, LikePredicate):
                    found = True
                if isinstance(pred, Comparison) and pred.value.is_string:
                    found = True
        assert found

    def test_deterministic_given_seed(self, catalog):
        a = QueryGenerator(catalog, seed=7).generate(10)
        b = QueryGenerator(catalog, seed=7).generate(10)
        assert a == b

    def test_different_seeds_differ(self, catalog):
        a = QueryGenerator(catalog, seed=1).generate(10)
        b = QueryGenerator(catalog, seed=2).generate(10)
        assert a != b

    def test_invalid_workload_class(self):
        with pytest.raises(DatasetError):
            WorkloadConfig(workload="emoji")

    def test_invalid_join_range(self):
        with pytest.raises(DatasetError):
            WorkloadConfig(min_joins=3, max_joins=1)

    def test_tpch_generation(self):
        catalog = build_tpch_catalog(scale=0.05, seed=3)
        gen = QueryGenerator(catalog, WorkloadConfig(max_joins=3), seed=1)
        for sql in gen.generate(10):
            analyze(parse(sql), catalog)

    def test_estimated_rows_cap_respected_mostly(self, catalog):
        from repro.plan import enumerate_plans, EnumeratorConfig
        cfg = WorkloadConfig(max_joins=4, max_estimated_rows=1e5)
        gen = QueryGenerator(catalog, cfg, seed=9)
        capped = 0
        sqls = gen.generate(15)
        for sql in sqls:
            query = analyze(parse(sql), catalog)
            plan = enumerate_plans(query, catalog, EnumeratorConfig(max_plans=1))[0]
            if all(n.est_rows <= 1e5 for n in plan.nodes()):
                capped += 1
        assert capped >= len(sqls) * 0.8


class TestDataCollector:
    def test_records_have_positive_costs(self, pipeline):
        for record in pipeline.records[:20]:
            assert record.cost_seconds > 0

    def test_plans_per_query_limit(self, catalog):
        collector = DataCollector(
            catalog, SparkSimulator(seed=0),
            config=CollectionConfig(plans_per_query=2))
        plans = collector.plans_for(
            "select count(*) from title t, movie_keyword mk "
            "where t.id = mk.movie_id and mk.keyword_id < 20")
        assert len(plans) == 2
        for plan in plans:
            assert all(n.obs_rows is not None for n in plan.nodes())

    def test_fixed_resources_mode(self, catalog):
        collector = DataCollector(
            catalog, SparkSimulator(seed=0),
            config=CollectionConfig(plans_per_query=1, fixed_resources=PAPER_CLUSTER))
        records = collector.collect([
            "select count(*) from movie_keyword mk where mk.keyword_id < 20"])
        assert len(records) == 1
        assert records[0].resources == PAPER_CLUSTER

    def test_bad_queries_skipped_not_fatal(self, catalog):
        collector = DataCollector(catalog, SparkSimulator(seed=0))
        records = collector.collect([
            "select count(*) from ghost_table",
            "select count(*) from movie_keyword mk where mk.keyword_id < 20",
        ])
        assert len(collector.skipped) == 1
        assert records  # the good query still produced records

    def test_varied_resource_states(self, pipeline):
        states = {r.resources for r in pipeline.records}
        assert len(states) > 3

    def test_to_samples_roundtrip(self, pipeline):
        encoder = pipeline.encoder_for(variant("RAAL"))
        samples = DataCollector.to_samples(pipeline.records[:5], encoder)
        assert len(samples) == 5
        for sample, record in zip(samples, pipeline.records[:5]):
            assert sample.cost_seconds == record.cost_seconds


class TestSplit:
    def test_split_fractions(self, pipeline):
        split = split_by_query(pipeline.records, train_fraction=0.8, seed=1)
        train_q = {r.sql for r in split.train}
        test_q = {r.sql for r in split.test}
        total = len(train_q) + len(test_q)
        assert 0.6 <= len(train_q) / total <= 0.95

    def test_no_query_leakage(self, pipeline):
        split = split_by_query(pipeline.records, seed=2)
        train_q = {r.sql for r in split.train}
        test_q = {r.sql for r in split.test}
        assert not train_q & test_q

    def test_all_records_kept(self, pipeline):
        split = split_by_query(pipeline.records, seed=3)
        assert len(split.train) + len(split.test) == len(pipeline.records)

    def test_empty_records_rejected(self):
        with pytest.raises(DatasetError):
            split_by_query([])

    def test_invalid_fraction_rejected(self, pipeline):
        with pytest.raises(DatasetError):
            split_by_query(pipeline.records, train_fraction=1.5)

    def test_deterministic(self, pipeline):
        a = split_by_query(pipeline.records, seed=4)
        b = split_by_query(pipeline.records, seed=4)
        assert [r.sql for r in a.test] == [r.sql for r in b.test]


class TestGroupByGeneration:
    def test_group_by_fraction_zero_means_none(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(group_by_fraction=0.0), seed=5)
        assert not any("group by" in sql for sql in gen.generate(15))

    def test_group_by_queries_generated_and_valid(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(group_by_fraction=0.9), seed=5)
        sqls = [s for s in gen.generate(20) if "group by" in s]
        assert sqls, "no GROUP BY queries generated at fraction 0.9"
        for sql in sqls:
            query = analyze(parse(sql), catalog)
            assert query.statement.group_by

    def test_group_by_column_has_low_cardinality(self, catalog):
        gen = QueryGenerator(catalog, WorkloadConfig(group_by_fraction=1.0), seed=6)
        for sql in gen.generate(15):
            stmt = parse(sql)
            if not stmt.group_by:
                continue
            query = analyze(stmt, catalog)
            col = query.statement.group_by[0]
            table = query.table_of(col.table)
            ndv = catalog.statistics(table).column(col.column).ndv
            assert ndv <= 64

    def test_group_by_queries_collect_and_execute(self, catalog):
        from repro.cluster import SparkSimulator
        gen = QueryGenerator(catalog, WorkloadConfig(group_by_fraction=1.0,
                                                     max_joins=2), seed=7)
        collector = DataCollector(catalog, SparkSimulator(seed=0),
                                  config=CollectionConfig(plans_per_query=2,
                                                          resource_states_per_plan=1))
        records = collector.collect(gen.generate(5))
        assert records
