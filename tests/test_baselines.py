"""Tests for the TLSTM and GPSJ baselines."""

import numpy as np
import pytest

from repro.baselines import GPSJCostModel, GPSJParameters, TLSTM, TLSTMConfig, TLSTMTrainer
from repro.cluster import PAPER_CLUSTER, ResourceProfile
from repro.core import variant
from repro.errors import TrainingError
from repro.eval.experiments import SMOKE, ExperimentPipeline


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def encoder(pipeline):
    return pipeline.encoder_for(variant("RAAL"))


@pytest.fixture(scope="module")
def records(pipeline):
    return pipeline.split.train


class TestTLSTM:
    def test_forward_scalar(self, pipeline, encoder, records):
        model = TLSTM(TLSTMConfig(node_dim=encoder.node_dim, hidden_size=16))
        record = records[0]
        feats = encoder.encode(record.plan, record.resources).node_features
        out = model(record.plan, feats)
        assert out.shape == ()

    def test_feature_row_mismatch_rejected(self, encoder, records):
        model = TLSTM(TLSTMConfig(node_dim=encoder.node_dim))
        record = records[0]
        feats = encoder.encode(record.plan, record.resources).node_features
        with pytest.raises(TrainingError):
            model(record.plan, feats[:-1])

    def test_training_reduces_loss(self, encoder, records):
        model = TLSTM(TLSTMConfig(node_dim=encoder.node_dim, hidden_size=16))
        trainer = TLSTMTrainer(model, epochs=5, seed=0)
        trainer.fit(records[:40], encoder)
        assert trainer.train_losses[-1] < trainer.train_losses[0]

    def test_too_few_records_rejected(self, encoder, records):
        trainer = TLSTMTrainer(TLSTM(TLSTMConfig(node_dim=encoder.node_dim)))
        with pytest.raises(TrainingError):
            trainer.fit(records[:1], encoder)

    def test_predictions_nonnegative_finite(self, encoder, records):
        model = TLSTM(TLSTMConfig(node_dim=encoder.node_dim, hidden_size=16))
        trainer = TLSTMTrainer(model, epochs=3, seed=0)
        trainer.fit(records[:30], encoder)
        preds = trainer.predict_seconds(records[:10], encoder)
        assert (preds >= 0).all() and np.isfinite(preds).all()

    def test_resource_blindness(self, encoder, records):
        """TLSTM ignores the resource state by construction: identical
        plans under different resources get identical estimates (the
        node features do not include resources)."""
        from dataclasses import replace
        model = TLSTM(TLSTMConfig(node_dim=encoder.node_dim, hidden_size=16))
        trainer = TLSTMTrainer(model, epochs=2, seed=0)
        trainer.fit(records[:20], encoder)
        record = records[0]
        r1 = replace(record, resources=PAPER_CLUSTER.with_memory(1.0))
        r2 = replace(record, resources=PAPER_CLUSTER.with_memory(6.0))
        p1 = trainer.predict_seconds([r1], encoder)[0]
        p2 = trainer.predict_seconds([r2], encoder)[0]
        assert p1 == pytest.approx(p2)


class TestGPSJ:
    def test_estimate_positive(self, pipeline, records):
        model = GPSJCostModel(pipeline.catalog)
        for record in records[:10]:
            est = model.estimate(record.plan, record.resources)
            assert est > 0 and np.isfinite(est)

    def test_calibration_improves_scale(self, pipeline, records):
        model = GPSJCostModel(pipeline.catalog)
        raw = np.array([model.estimate(r.plan, r.resources) for r in records[:50]])
        actual = np.array([r.cost_seconds for r in records[:50]])
        model.calibrate(records[:50])
        calibrated = np.array([model.estimate(r.plan, r.resources) for r in records[:50]])
        raw_err = np.median(np.abs(np.log(raw) - np.log(actual)))
        cal_err = np.median(np.abs(np.log(calibrated) - np.log(actual)))
        # Tolerance covers even-n median interpolation effects.
        assert cal_err <= raw_err + 0.01

    def test_calibrate_empty_rejected(self, pipeline):
        with pytest.raises(TrainingError):
            GPSJCostModel(pipeline.catalog).calibrate([])

    def test_more_parallelism_cheaper(self, pipeline, records):
        model = GPSJCostModel(pipeline.catalog)
        record = records[0]
        small = model.estimate(record.plan, ResourceProfile(executors=1, executor_cores=1))
        big = model.estimate(record.plan, ResourceProfile(executors=4, executor_cores=4))
        assert big < small

    def test_memory_blindness(self, pipeline, records):
        """GPSJ's linear formulas have no memory term — exactly the
        weakness the paper attributes to hand-crafted models."""
        model = GPSJCostModel(pipeline.catalog)
        record = records[0]
        lo = model.estimate(record.plan, PAPER_CLUSTER.with_memory(1.0))
        hi = model.estimate(record.plan, PAPER_CLUSTER.with_memory(6.0))
        assert lo == pytest.approx(hi)

    def test_uses_estimates_not_observations(self, pipeline, records):
        """GPSJ must consume optimizer estimates: zeroing observed rows
        does not change its estimate."""
        model = GPSJCostModel(pipeline.catalog)
        record = records[0]
        before = model.estimate(record.plan, record.resources)
        saved = [(n, n.obs_rows, n.obs_bytes) for n in record.plan.nodes()]
        try:
            for node in record.plan.nodes():
                node.obs_rows, node.obs_bytes = None, None
            after = model.estimate(record.plan, record.resources)
        finally:
            for node, rows, bytes_ in saved:
                node.obs_rows, node.obs_bytes = rows, bytes_
        assert before == pytest.approx(after)

    def test_custom_parameters(self, pipeline, records):
        cheap = GPSJCostModel(pipeline.catalog, GPSJParameters(cpu_tuple_cost=1e-9))
        costly = GPSJCostModel(pipeline.catalog, GPSJParameters(cpu_tuple_cost=1e-5))
        record = records[0]
        assert cheap.estimate(record.plan, record.resources) < \
            costly.estimate(record.plan, record.resources)
