"""Plan-side encoding cache: correctness, eviction, invalidation, dedup."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER
from repro.cluster.resources import ResourceProfile
from repro.data import build_imdb_catalog
from repro.encoding import PlanEncoder, plan_fingerprint
from repro.errors import EncodingError
from repro.plan import analyze, enumerate_plans
from repro.sql import parse
from repro.text import Word2VecConfig


@pytest.fixture(scope="module")
def catalog():
    return build_imdb_catalog(scale=0.05, seed=3)


@pytest.fixture(scope="module")
def plans(catalog):
    sqls = [
        "select count(*) from movie_keyword mk where mk.keyword_id < 25",
        """select count(*) from title t, movie_companies mc
           where t.id = mc.movie_id and mc.company_type_id > 1""",
        """select count(*) from title t, movie_companies mc, movie_keyword mk
           where t.id = mc.movie_id and t.id = mk.movie_id
           and mc.company_id = 4 and mk.keyword_id < 25""",
    ]
    out = []
    for sql in sqls:
        q = analyze(parse(sql), catalog)
        out.extend(enumerate_plans(q, catalog)[:3])
    return out


@pytest.fixture()
def encoder(plans):
    return PlanEncoder.fit(plans, word2vec_config=Word2VecConfig(dim=12, epochs=2))


class TestFingerprint:
    def test_stable_for_same_plan(self, plans):
        assert plan_fingerprint(plans[0]) == plan_fingerprint(plans[0])

    def test_distinct_plans_differ(self, plans):
        prints = {plan_fingerprint(p) for p in plans}
        assert len(prints) == len(plans)

    def test_estimate_change_changes_fingerprint(self, plans):
        plan = plans[0]
        before = plan_fingerprint(plan)
        node = plan.nodes()[0]
        old = node.est_rows
        try:
            node.est_rows = old + 1234.0
            assert plan_fingerprint(plan) != before
        finally:
            node.est_rows = old


class TestCacheCorrectness:
    def test_hit_returns_identical_features(self, encoder, plans):
        plan = plans[0]
        cold = encoder.encode(plan, PAPER_CLUSTER)
        assert encoder.cache_info().misses == 1
        warm = encoder.encode(plan, PAPER_CLUSTER)
        assert encoder.cache_info().hits == 1
        np.testing.assert_array_equal(cold.node_features, warm.node_features)
        np.testing.assert_array_equal(cold.child_mask, warm.child_mask)
        np.testing.assert_array_equal(cold.extras, warm.extras)
        # Plan-side arrays are shared (the point of the cache) …
        assert warm.node_features is cold.node_features
        # … and match a cache-bypassing fresh encode exactly.
        fresh = PlanEncoder(semantic=encoder.semantic,
                            structure=encoder.structure,
                            cache_size=0).encode(plan, PAPER_CLUSTER)
        np.testing.assert_array_equal(warm.node_features, fresh.node_features)
        np.testing.assert_array_equal(warm.extras, fresh.extras)

    def test_resource_side_not_cached(self, encoder, plans):
        plan = plans[0]
        a = encoder.encode(plan, PAPER_CLUSTER)
        b = encoder.encode(plan, ResourceProfile(executor_memory_gb=1.0))
        assert not np.array_equal(a.resources, b.resources)
        assert a.node_features is b.node_features

    def test_cached_arrays_are_readonly(self, encoder, plans):
        encoded = encoder.encode(plans[0], PAPER_CLUSTER)
        with pytest.raises(ValueError):
            encoded.node_features[0, 0] = 42.0

    def test_cache_disabled(self, plans, encoder):
        uncached = PlanEncoder(semantic=encoder.semantic,
                               structure=encoder.structure, cache_size=0)
        uncached.encode(plans[0], PAPER_CLUSTER)
        uncached.encode(plans[0], PAPER_CLUSTER)
        info = uncached.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size == 0

    def test_negative_cache_size_rejected(self, encoder):
        with pytest.raises(EncodingError):
            PlanEncoder(semantic=encoder.semantic, cache_size=-1)


class TestEviction:
    def test_eviction_at_capacity(self, plans, encoder):
        small = PlanEncoder(semantic=encoder.semantic,
                            structure=encoder.structure, cache_size=2)
        a, b, c = plans[:3]
        small.encode(a, PAPER_CLUSTER)
        small.encode(b, PAPER_CLUSTER)
        assert small.cache_info().size == 2
        small.encode(c, PAPER_CLUSTER)          # evicts a (LRU)
        assert small.cache_info().size == 2
        small.encode(c, PAPER_CLUSTER)
        assert small.cache_info().hits == 1
        misses_before = small.cache_info().misses
        small.encode(a, PAPER_CLUSTER)          # a was evicted → miss
        assert small.cache_info().misses == misses_before + 1

    def test_lru_order_refreshed_on_hit(self, plans, encoder):
        small = PlanEncoder(semantic=encoder.semantic,
                            structure=encoder.structure, cache_size=2)
        a, b, c = plans[:3]
        small.encode(a, PAPER_CLUSTER)
        small.encode(b, PAPER_CLUSTER)
        small.encode(a, PAPER_CLUSTER)          # a becomes most-recent
        small.encode(c, PAPER_CLUSTER)          # evicts b, not a
        misses_before = small.cache_info().misses
        small.encode(a, PAPER_CLUSTER)
        assert small.cache_info().misses == misses_before  # still cached


class TestInvalidation:
    def test_flipping_use_structure_invalidates(self, encoder, plans):
        plan = plans[0]
        structured = encoder.encode(plan, PAPER_CLUSTER)
        assert encoder.cache_info().size == 1
        encoder.use_structure = False
        assert encoder.cache_info().size == 0
        flat = encoder.encode(plan, PAPER_CLUSTER)
        assert flat.node_features.shape[1] < structured.node_features.shape[1]
        # And back: the cache must not serve the structure-less features.
        encoder.use_structure = True
        again = encoder.encode(plan, PAPER_CLUSTER)
        np.testing.assert_array_equal(again.node_features, structured.node_features)

    def test_flipping_use_onehot_invalidates(self, encoder, plans):
        plan = plans[0]
        w2v = encoder.encode(plan, PAPER_CLUSTER)
        encoder.use_onehot = True
        assert encoder.cache_info().size == 0
        onehot = encoder.encode(plan, PAPER_CLUSTER)
        assert onehot.node_features.shape != w2v.node_features.shape or \
            not np.array_equal(onehot.node_features, w2v.node_features)

    def test_same_value_assignment_keeps_cache(self, encoder, plans):
        encoder.encode(plans[0], PAPER_CLUSTER)
        encoder.use_structure = True            # no-op flip
        assert encoder.cache_info().size == 1

    def test_onehot_off_without_semantic_rejected(self):
        enc = PlanEncoder(use_onehot=True)
        with pytest.raises(EncodingError):
            enc.use_onehot = False

    def test_cache_clear(self, encoder, plans):
        encoder.encode(plans[0], PAPER_CLUSTER)
        encoder.cache_clear()
        info = encoder.cache_info()
        assert info.size == 0 and info.hits == 0 and info.misses == 0


class TestEncodeManyDedup:
    def test_grid_encodes_each_plan_once(self, encoder, plans):
        profiles = [PAPER_CLUSTER,
                    ResourceProfile(executor_memory_gb=1.0),
                    ResourceProfile(executors=4),
                    ResourceProfile(executor_cores=1)]
        grid = [(plan, prof) for prof in profiles for plan in plans[:3]]
        encoded = encoder.encode_many(grid)
        assert len(encoded) == 12
        info = encoder.cache_info()
        assert info.misses == 3            # one cold encode per distinct plan
        assert info.hits == 9

    def test_encode_many_matches_encode(self, encoder, plans):
        pairs = [(p, PAPER_CLUSTER) for p in plans[:3]]
        many = encoder.encode_many(pairs)
        for (plan, prof), enc in zip(pairs, many):
            single = encoder.encode(plan, prof)
            np.testing.assert_array_equal(single.node_features, enc.node_features)
            np.testing.assert_array_equal(single.resources, enc.resources)


class TestConcurrentAccess:
    """The LRU must stay consistent under concurrent bucket workers."""

    def test_concurrent_hits_and_evictions(self, plans):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        # capacity 2 with >2 distinct plans: every thread forces misses,
        # hits, move_to_end reorderings, and evictions concurrently.
        encoder = PlanEncoder.fit(
            plans, word2vec_config=Word2VecConfig(dim=12, epochs=2),
            cache_size=2)
        barrier = threading.Barrier(6)
        rounds = 30

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(rounds):
                encoder.encode(plans[int(rng.integers(0, len(plans)))],
                               PAPER_CLUSTER)

        with ThreadPoolExecutor(max_workers=6) as pool:
            for future in [pool.submit(worker, s) for s in range(6)]:
                future.result()

        info = encoder.cache_info()
        # Counter conservation: every lookup is exactly a hit or a miss,
        # every miss either evicted something or grew the cache.
        assert info.hits + info.misses == 6 * rounds
        assert info.size <= info.capacity == 2
        assert info.evictions == info.misses - info.size
        assert info.hits > 0 and info.misses > 0 and info.evictions > 0

    def test_concurrent_results_identical(self, plans):
        from concurrent.futures import ThreadPoolExecutor

        encoder = PlanEncoder.fit(
            plans, word2vec_config=Word2VecConfig(dim=12, epochs=2),
            cache_size=2)
        reference = [encoder.encode(p, PAPER_CLUSTER).node_features.copy()
                     for p in plans]

        def worker(_):
            return [encoder.encode(p, PAPER_CLUSTER).node_features
                    for p in plans]

        with ThreadPoolExecutor(max_workers=4) as pool:
            for out in pool.map(worker, range(8)):
                for got, want in zip(out, reference):
                    np.testing.assert_array_equal(got, want)


class TestEncoderDtype:
    def test_default_is_float64(self, encoder, plans):
        enc = encoder.encode(plans[0], PAPER_CLUSTER)
        assert enc.node_features.dtype == np.float64
        assert enc.resources.dtype == np.float64

    def test_float32_mode_halves_footprint_and_clears_cache(self, encoder, plans):
        encoder.encode(plans[0], PAPER_CLUSTER)
        assert encoder.cache_info().size == 1
        encoder.dtype = np.float32
        assert encoder.cache_info().size == 0   # stale f64 entries dropped
        enc = encoder.encode(plans[0], PAPER_CLUSTER)
        assert enc.node_features.dtype == np.float32
        assert enc.resources.dtype == np.float32
        assert enc.extras.dtype == np.float32

    def test_rejects_non_float_dtype(self, encoder):
        with pytest.raises(EncodingError):
            encoder.dtype = np.int32
