"""Additional SQL front-end edge cases and robustness tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, TokenizeError
from repro.sql import (
    CompareOp,
    evaluate_predicate,
    parse,
    tokenize,
)
from repro.sql.ast import Comparison, ColumnRef, Literal


class TestParserEdgeCases:
    def test_deeply_nested_from_list(self):
        tables = ", ".join(f"t{i} a{i}" for i in range(8))
        stmt = parse(f"select count(*) from {tables}")
        assert len(stmt.tables) == 8

    def test_many_conjuncts(self):
        conds = " and ".join(f"t.c{i} > {i}" for i in range(12))
        stmt = parse(f"select count(*) from t where {conds}")
        assert len(stmt.filters) == 12

    def test_whitespace_and_newlines(self):
        stmt = parse("select\n\tcount(*)\nfrom\n\tt\nwhere\n\tt.x\t<\t5")
        assert stmt.filters

    def test_keywords_as_identifiers_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from select")

    def test_empty_in_list_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t where t.x in ()")

    def test_between_requires_and(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t where t.x between 1 10")

    def test_double_where_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t where t.x > 1 where t.y > 2")

    def test_limit_non_number_rejected(self):
        with pytest.raises(ParseError):
            parse("select t.a from t limit many")

    def test_negative_literals_supported(self):
        stmt = parse("select count(*) from t where t.x > -5.5 "
                     "and t.y between -10 and -1 and t.z in (-1, -2)")
        assert stmt.filters[0].value == Literal(-5.5)
        assert stmt.filters[1].low == Literal(-10.0)
        assert stmt.filters[2].values == (Literal(-1.0), Literal(-2.0))

    def test_binary_minus_still_rejected(self):
        # Arithmetic expressions are out of the GPSJ subset; "a-5" must
        # not silently parse as "a (-5)".
        with pytest.raises((ParseError, TokenizeError)):
            parse("select count(*) from t where t.a-5 > 2")

    def test_semicolon_only_at_end(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t; select count(*) from u")

    def test_order_by_multiple_keys(self):
        stmt = parse("select t.a, t.b from t order by t.a desc, t.b asc")
        assert len(stmt.order_by) == 2

    def test_count_column_with_alias(self):
        stmt = parse("select count(t.x) as n from t")
        assert stmt.select_items[0].alias == "n"

    @settings(max_examples=30, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_text_never_hangs_or_crashes_interpreter(self, text):
        try:
            parse(text)
        except (ParseError, TokenizeError):
            pass  # rejection is the expected path


class TestPredicateEvalEdgeCases:
    def test_empty_array(self):
        pred = Comparison(ColumnRef("x", "t"), CompareOp.LT, Literal(5.0))
        mask = evaluate_predicate(pred, np.array([]))
        assert mask.shape == (0,)

    def test_all_null_numeric_column(self):
        pred = Comparison(ColumnRef("x", "t"), CompareOp.GE, Literal(0.0))
        mask = evaluate_predicate(pred, np.full(4, np.nan))
        assert not mask.any()

    def test_all_null_string_column(self):
        pred = Comparison(ColumnRef("s", "t"), CompareOp.EQ, Literal("a"))
        values = np.array([None, None], dtype=object)
        assert not evaluate_predicate(pred, values).any()

    def test_string_ne_excludes_nulls(self):
        pred = Comparison(ColumnRef("s", "t"), CompareOp.NE, Literal("a"))
        values = np.array(["a", "b", None], dtype=object)
        np.testing.assert_array_equal(
            evaluate_predicate(pred, values), [False, True, False])

    def test_inf_values_comparable(self):
        pred = Comparison(ColumnRef("x", "t"), CompareOp.GT, Literal(1e300))
        mask = evaluate_predicate(pred, np.array([np.inf, 0.0]))
        np.testing.assert_array_equal(mask, [True, False])


class TestTokenizerEdgeCases:
    def test_adjacent_operators(self):
        tokens = tokenize("a<=b")
        values = [t.value for t in tokens[:-1]]
        assert values == ["a", "<=", "b"]

    def test_number_followed_by_keyword(self):
        tokens = tokenize("between 1 and 2")
        assert [t.value for t in tokens[:-1]] == ["between", "1", "and", "2"]

    def test_comment_at_end_of_input(self):
        tokens = tokenize("select -- trailing comment")
        assert tokens[0].value == "select"
        assert tokens[1].type.name == "EOF"

    def test_underscore_identifiers(self):
        tokens = tokenize("_private __dunder mid_dle")
        assert [t.value for t in tokens[:-1]] == ["_private", "__dunder", "mid_dle"]

    def test_positions_recorded(self):
        tokens = tokenize("select x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
