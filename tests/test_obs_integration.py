"""Integration tests: telemetry wired through the real pipeline.

Covers the acceptance path — one guarded prediction under an attached
registry yields a span tree with encode/forward stages plus nonzero
latency histograms exportable as Prometheus text and JSON — and the
fault-injection path: breaker trips and fallbacks surface as structured
events and registry counters.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.core import CostPredictor
from repro.core.trainer import Trainer, TrainerConfig
from repro.core.variants import make_model, variant
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.reliability import (
    BreakerConfig,
    FaultInjector,
    GuardedCostPredictor,
    RetryPolicy,
)


class FakeClock:
    """Clock that ticks forward a fixed step on every read."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


@pytest.fixture()
def fresh_predictor(pipeline, trained, tmp_path):
    """A private predictor per test, safe to corrupt (fresh caches too)."""
    from repro.core import load_predictor, save_predictor

    source = CostPredictor(trained.encoder, trained.trainer)
    save_predictor(source, tmp_path / "model")
    return load_predictor(tmp_path / "model")


@pytest.fixture()
def telemetry():
    """Fresh attached telemetry bundle, detached (restored) afterwards."""
    bundle = obs.Telemetry.create()
    with obs.attached(bundle):
        yield bundle


class TestPredictionSpanTree:
    def test_single_predict_produces_full_span_tree(
            self, fresh_predictor, pipeline, telemetry):
        record = pipeline.records[0]
        seconds = fresh_predictor.predict(record.plan, record.resources)
        assert np.isfinite(seconds)

        root = telemetry.tracer.last_root()
        assert root.name == "predict"
        assert root.duration > 0
        encode = root.find("encode")
        forward = root.find("forward")
        assert encode is not None and forward is not None
        assert forward.find("forward_inference") is not None
        assert encode.annotations["pairs"] == 1
        assert forward.annotations["plans"] == 1

        reg = telemetry.registry
        assert reg.counter("predict.requests_total").value == 1
        assert reg.counter("predict.pairs_total").value == 1
        latency = reg.histogram("predict.latency_seconds").snapshot()
        fwd = reg.histogram("predict.forward_seconds").snapshot()
        assert latency["count"] == 1 and latency["sum"] > 0
        assert fwd["count"] == 1 and fwd["sum"] > 0

        # Both export formats carry the histograms out.
        prom = reg.to_prometheus()
        assert 'predict_latency_seconds_bucket{le="+Inf"} 1' in prom
        assert "predict_forward_seconds_count 1" in prom
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["predict.latency_seconds"]["count"] == 1

    def test_encoder_cache_metrics(self, fresh_predictor, pipeline, telemetry):
        record = pipeline.records[0]
        pair = [(record.plan, record.resources)]
        fresh_predictor.predict_many(pair)
        fresh_predictor.predict_many(pair)
        reg = telemetry.registry
        assert reg.counter("encoder.cache.misses").value == 1
        assert reg.counter("encoder.cache.hits").value == 1
        root = telemetry.tracer.last_root()
        assert root.find("encode").annotations["cache_hits"] == 1
        info = fresh_predictor.encoder.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_cache_eviction_counter_and_event(
            self, fresh_predictor, pipeline, telemetry):
        fresh_predictor.encoder.cache_size = 1
        fresh_predictor.encoder.cache_clear()
        plans = [r.plan for r in pipeline.records[:3]]
        resources = pipeline.records[0].resources
        fresh_predictor.predict_many([(p, resources) for p in plans])
        assert telemetry.registry.counter("encoder.cache.evictions").value > 0
        assert fresh_predictor.encoder.cache_info().evictions > 0
        evicts = telemetry.events.events(component="encoder",
                                         event="cache_evict")
        assert evicts and evicts[0]["capacity"] == 1

    def test_predict_grid_span_and_counter(
            self, fresh_predictor, pipeline, telemetry):
        plans = [pipeline.records[0].plan, pipeline.records[1].plan]
        profiles = [pipeline.records[0].resources, pipeline.records[1].resources]
        grid = fresh_predictor.predict_grid(plans, profiles)
        assert grid.shape == (len(profiles), len(plans))
        root = telemetry.tracer.last_root()
        assert root.name == "predict_grid"
        assert root.annotations == {"plans": 2, "profiles": 2}
        assert telemetry.registry.counter("predict.grids_total").value == 1

    def test_detached_prediction_leaves_no_trace(self, fresh_predictor, pipeline):
        previous = obs.detach()
        try:
            record = pipeline.records[0]
            seconds = fresh_predictor.predict(record.plan, record.resources)
            assert np.isfinite(seconds)
            assert not obs.enabled()
        finally:
            if previous is not None:
                obs.attach(previous)


class TestGuardTelemetry:
    def make_guard(self, predictor, pipeline, attempts=1, threshold=2):
        return GuardedCostPredictor(
            predictor,
            gpsj=GPSJCostModel(pipeline.catalog),
            breaker_config=BreakerConfig(failure_threshold=threshold,
                                         cooldown_seconds=30.0),
            retry_policy=RetryPolicy(attempts=attempts),
            sleep=lambda _s: None,
        )

    def test_healthy_guarded_predict_annotates_source(
            self, fresh_predictor, pipeline, telemetry):
        guard = self.make_guard(fresh_predictor, pipeline)
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "raal"
        root = telemetry.tracer.last_root()
        assert root.name == "guarded_predict"
        assert root.annotations["source"] == "raal"
        assert root.annotations["degraded"] is False
        # The stage's encode/forward spans nest under the guard span.
        assert root.find("encode") is not None
        assert root.find("forward") is not None
        reg = telemetry.registry
        assert reg.counter("guard.requests_total").value == 1
        assert reg.counter("guard.raal.served_total").value == 1
        assert "guard.degraded_total" not in reg

    def test_fault_injection_breaker_trip_emits_events(
            self, fresh_predictor, pipeline, telemetry):
        guard = self.make_guard(fresh_predictor, pipeline, threshold=2)
        FaultInjector().force_encode_errors(guard.encoder)
        record = pipeline.records[0]
        pair = [(record.plan, record.resources)]

        for _ in range(3):  # two failures trip the breaker; third skips it
            assert guard.predict_many_explained(pair).source == "gpsj"

        events = telemetry.events
        failures = events.events(component="guard", event="stage_failure")
        assert len(failures) == 2
        assert failures[0]["stage"] == "raal"
        assert "injected encode fault" in failures[0]["error"]

        transitions = events.events(component="guard",
                                    event="breaker_transition")
        assert [(t["old"], t["new"]) for t in transitions] == \
            [("closed", "open")]
        fallbacks = events.events(component="guard", event="fallback")
        assert len(fallbacks) == 3
        assert {f["source"] for f in fallbacks} == {"gpsj"}

        reg = telemetry.registry
        assert reg.counter("guard.raal.failures_total").value == 2
        assert reg.counter("guard.raal.skipped_open_total").value == 1
        assert reg.counter("guard.raal.breaker_transitions_total").value == 1
        assert reg.counter("guard.degraded_total").value == 3
        assert reg.counter("guard.gpsj.served_total").value == 3

    def test_degradation_counts_mirror_registry(
            self, fresh_predictor, pipeline, telemetry):
        guard = self.make_guard(fresh_predictor, pipeline)
        record = pipeline.records[0]
        pair = [(record.plan, record.resources)]
        guard.predict_many_explained(pair)           # healthy -> raal
        FaultInjector().force_encode_errors(guard.encoder)
        guard.predict_many_explained(pair)           # degraded -> gpsj
        counts = guard.degradation_counts()
        assert counts["requests_served"] == 2
        assert counts["degraded"] == 1
        assert counts["raal.served"] == 1
        assert counts["gpsj.served"] == 1
        assert counts["raal.failures"] == 1
        reg = telemetry.registry
        assert reg.counter("guard.degraded_total").value == counts["degraded"]
        assert reg.counter("guard.raal.failures_total").value == \
            counts["raal.failures"]

    def test_retry_attempts_emit_events(
            self, fresh_predictor, pipeline, telemetry):
        guard = self.make_guard(fresh_predictor, pipeline, attempts=3)
        FaultInjector().force_encode_errors(guard.encoder)
        record = pipeline.records[0]
        guard.predict_many_explained([(record.plan, record.resources)])
        retries = telemetry.events.events(component="guard", event="retry")
        assert [r["attempt"] for r in retries] == [1, 2]
        assert telemetry.registry.counter(
            "guard.raal.retry_attempts_total").value == 2

    def test_rejected_input_event(self, fresh_predictor, pipeline, telemetry):
        fresh_predictor.encoder.structure.max_nodes = 1
        guard = self.make_guard(fresh_predictor, pipeline)
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        (event,) = telemetry.events.events(component="guard",
                                           event="rejected_input")
        assert "max_nodes" in event["reason"]
        assert telemetry.registry.counter(
            "guard.raal.rejected_input_total").value == 1
        # Rejection is not a stage failure: breaker stays closed.
        assert "guard.raal.breaker_transitions_total" not in telemetry.registry


class TestTrainerTelemetry:
    def test_epoch_seconds_with_injected_clock(self, pipeline, telemetry):
        spec = variant("RAAL")
        samples = pipeline.samples_for(spec, "train")[:12]
        model = make_model(spec, pipeline.base_model_config(spec))
        trainer = Trainer(model, TrainerConfig(epochs=2, batch_size=8, seed=0),
                          clock=FakeClock(step=0.25))
        result = trainer.fit(samples)
        assert len(result.epoch_seconds) == len(result.train_losses) == 2
        assert all(s > 0 for s in result.epoch_seconds)
        assert result.train_seconds >= sum(result.epoch_seconds)

        epochs = telemetry.events.events(component="trainer", event="epoch")
        assert [e["epoch"] for e in epochs] == [0, 1]
        assert all(np.isfinite(e["train_loss"]) for e in epochs)
        assert all(e["seconds"] > 0 for e in epochs)
        (done,) = telemetry.events.events(component="trainer",
                                          event="fit_complete")
        assert done["epochs"] == 2

        reg = telemetry.registry
        hist = reg.histogram("train.epoch_seconds").snapshot()
        assert hist["count"] == 2
        assert reg.gauge("train.epochs_run").value == 2

    def test_experiment_pipeline_surfaces_epoch_seconds(self, trained):
        assert len(trained.epoch_seconds) == len(trained.train_losses)
        assert trained.train_seconds > 0


class TestReportEndToEnd:
    def test_report_from_live_run_renders_and_round_trips(
            self, fresh_predictor, pipeline, telemetry, tmp_path):
        record = pipeline.records[0]
        fresh_predictor.predict(record.plan, record.resources)
        report = obs.TelemetryReport.from_telemetry(telemetry)
        assert "predict.requests_total" in report.metrics
        assert report.spans and report.spans[-1]["name"] == "predict"
        text = report.render()
        assert "predict.latency_seconds" in text
        path = tmp_path / "report.json"
        report.write(path)
        loaded = obs.load_report(path)
        assert loaded.metrics == report.metrics
