"""Tests for the SQL front end: tokenizer, parser, predicate evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, TokenizeError
from repro.sql import (
    AggregateExpr,
    AggregateFunc,
    BetweenPredicate,
    ColumnRef,
    Comparison,
    CompareOp,
    InPredicate,
    IsNullPredicate,
    JoinCondition,
    LikePredicate,
    Literal,
    TokenType,
    evaluate_predicate,
    like_to_regex,
    parse,
    tokenize,
)

# The paper's four Sec. III queries must parse as written.
PAPER_QUERIES = [
    "SELECT COUNT(*) FROM movie_keyword mk WHERE mk.keyword_id<71692;",
    """SELECT COUNT(*) FROM title t, movie_companies mc
       WHERE t.id = mc.movie_id AND mc.company_id < 213849
       AND mc.company_type_id > 1;""",
    """SELECT COUNT(*) FROM title t, movie_info_idx mi_idx
       WHERE t.id = mi_idx.movie_id AND t.kind_id < 7
       AND t.production_year > 1961 AND mi_idx.info_type_id < 101;""",
    """SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk
       WHERE t.id = mc.movie_id AND t.id = mk.movie_id
       AND mc.company_id = 43268 AND mk.keyword_id < 2560;""",
]


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.type == TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_lowercased(self):
        tok = tokenize("Movie_Keyword")[0]
        assert tok.type == TokenType.IDENTIFIER
        assert tok.value == "movie_keyword"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.value for t in tokens[:3]] == ["42", "3.14", ".5"]
        assert all(t.type == TokenType.NUMBER for t in tokens[:3])

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("t1.col")
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENTIFIER, TokenType.DOT, TokenType.IDENTIFIER]

    def test_string_literal(self):
        tok = tokenize("'hello world'")[0]
        assert tok.type == TokenType.STRING
        assert tok.value == "hello world"

    def test_escaped_quote(self):
        tok = tokenize("'it''s'")[0]
        assert tok.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("= <> != < <= > >=")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "<>", "<>", "<", "<=", ">", ">="]

    def test_line_comment_skipped(self):
        tokens = tokenize("select -- comment\n1")
        assert tokens[0].value == "select"
        assert tokens[1].value == "1"

    def test_invalid_character(self):
        with pytest.raises(TokenizeError):
            tokenize("select @")

    def test_eof_token_always_last(self):
        assert tokenize("")[-1].type == TokenType.EOF


class TestParserBasics:
    def test_count_star(self):
        stmt = parse("select count(*) from t")
        assert stmt.has_aggregates
        expr = stmt.select_items[0].expr
        assert isinstance(expr, AggregateExpr)
        assert expr.func == AggregateFunc.COUNT
        assert expr.argument is None

    def test_paper_queries_parse(self):
        for sql in PAPER_QUERIES:
            stmt = parse(sql)
            assert stmt.has_aggregates

    def test_paper_query_structure(self):
        stmt = parse(PAPER_QUERIES[3])
        assert [t.table for t in stmt.tables] == ["title", "movie_companies", "movie_keyword"]
        assert [t.alias for t in stmt.tables] == ["t", "mc", "mk"]
        assert len(stmt.joins) == 2
        assert len(stmt.filters) == 2

    def test_table_alias_with_as(self):
        stmt = parse("select count(*) from title as t where t.id > 5")
        assert stmt.tables[0].alias == "t"
        assert stmt.tables[0].name == "t"

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from a t, b t")

    def test_select_column_list(self):
        stmt = parse("select t.id, t.name from t")
        assert all(isinstance(i.expr, ColumnRef) for i in stmt.select_items)

    def test_select_item_alias(self):
        stmt = parse("select count(*) as n from t")
        assert stmt.select_items[0].alias == "n"

    def test_aggregates_sum_avg_min_max(self):
        stmt = parse("select sum(t.x), avg(t.x), min(t.x), max(t.x) from t")
        funcs = [i.expr.func for i in stmt.select_items]
        assert funcs == [AggregateFunc.SUM, AggregateFunc.AVG,
                         AggregateFunc.MIN, AggregateFunc.MAX]

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse("select sum(*) from t")

    def test_bare_star_rejected(self):
        with pytest.raises(ParseError):
            parse("select * from t")

    def test_group_by(self):
        stmt = parse("select t.a, count(*) from t group by t.a")
        assert stmt.group_by == [ColumnRef("a", "t")]

    def test_order_by_desc(self):
        stmt = parse("select t.a from t order by t.a desc, t.b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_limit(self):
        assert parse("select t.a from t limit 10").limit == 10

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t extra tokens here)")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) where x = 1")

    def test_roundtrip_str_reparses(self):
        stmt = parse(PAPER_QUERIES[2])
        again = parse(str(stmt))
        assert str(again) == str(stmt)


class TestPredicates:
    def test_comparison(self):
        stmt = parse("select count(*) from t where t.x <= 5")
        pred = stmt.filters[0]
        assert isinstance(pred, Comparison)
        assert pred.op == CompareOp.LE
        assert pred.value == Literal(5.0)

    def test_reversed_comparison_flips(self):
        stmt = parse("select count(*) from t where 5 < t.x")
        pred = stmt.filters[0]
        assert pred.op == CompareOp.GT
        assert pred.column == ColumnRef("x", "t")

    def test_string_comparison(self):
        stmt = parse("select count(*) from t where t.s = 'abc'")
        assert stmt.filters[0].value == Literal("abc")

    def test_between(self):
        stmt = parse("select count(*) from t where t.x between 1 and 10")
        pred = stmt.filters[0]
        assert isinstance(pred, BetweenPredicate)
        assert pred.low == Literal(1.0)
        assert pred.high == Literal(10.0)

    def test_in_list(self):
        stmt = parse("select count(*) from t where t.s in ('a', 'b', 'c')")
        pred = stmt.filters[0]
        assert isinstance(pred, InPredicate)
        assert len(pred.values) == 3

    def test_like(self):
        stmt = parse("select count(*) from t where t.s like 'ab%'")
        pred = stmt.filters[0]
        assert isinstance(pred, LikePredicate)
        assert not pred.negated

    def test_not_like(self):
        stmt = parse("select count(*) from t where t.s not like 'ab%'")
        assert stmt.filters[0].negated

    def test_is_null_and_is_not_null(self):
        stmt = parse("select count(*) from t where t.a is null and t.b is not null")
        assert isinstance(stmt.filters[0], IsNullPredicate)
        assert not stmt.filters[0].negated
        assert stmt.filters[1].negated

    def test_equi_join_detected(self):
        stmt = parse("select count(*) from a, b where a.id = b.a_id")
        assert len(stmt.joins) == 1
        assert isinstance(stmt.joins[0], JoinCondition)

    def test_theta_join_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from a, b where a.id < b.a_id")

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t where t.x not between 1 and 2")

    def test_missing_predicate_operator(self):
        with pytest.raises(ParseError):
            parse("select count(*) from t where t.x")


class TestEvaluatePredicate:
    def _pred(self, sql_condition: str):
        return parse(f"select count(*) from t where {sql_condition}").filters[0]

    def test_numeric_lt(self):
        pred = self._pred("t.x < 3")
        mask = evaluate_predicate(pred, np.array([1.0, 3.0, 5.0]))
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_numeric_ne_excludes_nulls(self):
        pred = self._pred("t.x <> 2")
        mask = evaluate_predicate(pred, np.array([1.0, 2.0, np.nan]))
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_nan_never_matches_comparison(self):
        pred = self._pred("t.x >= 0")
        mask = evaluate_predicate(pred, np.array([np.nan, 0.0]))
        np.testing.assert_array_equal(mask, [False, True])

    def test_string_eq(self):
        pred = self._pred("t.s = 'b'")
        vals = np.array(["a", "b", None], dtype=object)
        np.testing.assert_array_equal(evaluate_predicate(pred, vals), [False, True, False])

    def test_string_lexicographic_lt(self):
        pred = self._pred("t.s < 'm'")
        vals = np.array(["a", "z"], dtype=object)
        np.testing.assert_array_equal(evaluate_predicate(pred, vals), [True, False])

    def test_between_inclusive(self):
        pred = self._pred("t.x between 2 and 4")
        mask = evaluate_predicate(pred, np.array([1.0, 2.0, 4.0, 5.0]))
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_in_numeric(self):
        pred = self._pred("t.x in (1, 3)")
        mask = evaluate_predicate(pred, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_like_prefix(self):
        pred = self._pred("t.s like 'ab%'")
        vals = np.array(["abc", "abd", "xab", None], dtype=object)
        np.testing.assert_array_equal(
            evaluate_predicate(pred, vals), [True, True, False, False])

    def test_not_like_excludes_nulls(self):
        pred = self._pred("t.s not like 'a%'")
        vals = np.array(["abc", "xyz", None], dtype=object)
        np.testing.assert_array_equal(
            evaluate_predicate(pred, vals), [False, True, False])

    def test_like_underscore(self):
        pred = self._pred("t.s like 'a_c'")
        vals = np.array(["abc", "ac", "axc"], dtype=object)
        np.testing.assert_array_equal(evaluate_predicate(pred, vals), [True, False, True])

    def test_is_null(self):
        pred = self._pred("t.x is null")
        mask = evaluate_predicate(pred, np.array([1.0, np.nan]))
        np.testing.assert_array_equal(mask, [False, True])

    def test_is_not_null_strings(self):
        pred = self._pred("t.s is not null")
        vals = np.array(["a", None], dtype=object)
        np.testing.assert_array_equal(evaluate_predicate(pred, vals), [True, False])

    def test_like_to_regex_escapes_metachars(self):
        assert like_to_regex("a.b%").match("a.bXYZ")
        assert not like_to_regex("a.b%").match("aXb")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30), st.floats(-100, 100))
    def test_property_lt_matches_numpy(self, values, threshold):
        pred = Comparison(ColumnRef("x", "t"), CompareOp.LT, Literal(threshold))
        arr = np.array(values)
        np.testing.assert_array_equal(evaluate_predicate(pred, arr), arr < threshold)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20),
           st.floats(-50, 0), st.floats(0, 50))
    def test_property_between_is_intersection(self, values, lo, hi):
        pred = BetweenPredicate(ColumnRef("x", "t"), Literal(lo), Literal(hi))
        arr = np.array(values)
        np.testing.assert_array_equal(
            evaluate_predicate(pred, arr), (arr >= lo) & (arr <= hi))
