"""Tests for the overload-resilience layer: deadlines, admission
control, the precision-degradation ladder, the accuracy canary, and
their integration into the guarded prediction chain.

Time-driven behaviour runs on injected fake clocks wherever possible;
the few tests that exercise real thread abandonment use generous
margins (a 500ms injected hang against a 50ms deadline) so they stay
robust on loaded CI machines.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.baselines.gpsj import GPSJCostModel
from repro.core import CostPredictor
from repro.core.execution import BucketExecutor
from repro.core.predictor import PredictorConfig
from repro.errors import DeadlineExceeded, Overloaded, ReproError, TrainingError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.nn.precision import inference_weights, invalidate_inference_cache
from repro.reliability import (
    CLOSED,
    OPEN,
    AccuracyCanary,
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    Deadline,
    DegradationLadder,
    FaultInjector,
    GuardedCostPredictor,
    LadderConfig,
    RetryPolicy,
    retry_call,
)


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- deadlines -------------------------------------------------------------
class TestDeadline:
    def test_countdown_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.from_ms(50, clock=clock)
        assert deadline.remaining() == pytest.approx(0.05)
        assert not deadline.expired()
        deadline.check("early")  # within budget: no raise
        clock.advance(0.06)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.01)

    def test_check_names_the_checkpoint(self):
        clock = FakeClock()
        deadline = Deadline.after(0.01, clock=clock)
        clock.advance(0.02)
        with pytest.raises(DeadlineExceeded, match="between buckets"):
            deadline.check("between buckets")

    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError):
            Deadline.after(-1.0)

    def test_zero_budget_is_immediately_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(0.0, clock=clock)
        assert deadline.expired()


# -- admission control -----------------------------------------------------
class TestAdmission:
    def test_fast_path_admits_under_capacity(self):
        ctl = AdmissionController(AdmissionConfig(max_in_flight=2))
        with ctl.admit():
            assert ctl.in_flight == 1
            with ctl.admit():
                assert ctl.in_flight == 2
        assert ctl.in_flight == 0
        assert ctl.snapshot()["admitted_total"] == 2

    def test_queue_full_sheds_instantly(self):
        ctl = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=0))
        ctl.acquire()
        start = time.monotonic()
        with pytest.raises(Overloaded, match="queue full"):
            ctl.acquire()
        assert time.monotonic() - start < 0.005  # no wait, no lock convoy
        assert ctl.snapshot()["shed_queue_full"] == 1
        ctl.release()

    def test_expired_deadline_sheds_without_queueing(self):
        clock = FakeClock()
        ctl = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=4), clock=clock)
        ctl.acquire()
        stale = Deadline.after(0.01, clock=clock)
        clock.advance(0.02)
        with pytest.raises(Overloaded):
            ctl.acquire(deadline=stale)
        assert ctl.queue_depth == 0
        ctl.release()

    def test_wait_timeout_sheds(self):
        ctl = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=2,
                            max_wait_seconds=0.02))
        ctl.acquire()
        with pytest.raises(Overloaded, match="no slot"):
            ctl.acquire()
        assert ctl.snapshot()["shed_wait_timeout"] == 1
        ctl.release()

    def test_release_without_acquire_rejected(self):
        ctl = AdmissionController()
        with pytest.raises(ReproError):
            ctl.release()

    def test_waiter_admitted_when_slot_frees(self):
        import threading

        ctl = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=2,
                            max_wait_seconds=5.0))
        ctl.acquire()
        admitted = threading.Event()

        def waiter():
            ctl.acquire()
            admitted.set()
            ctl.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(100):
            if ctl.queue_depth == 1:
                break
            time.sleep(0.005)
        ctl.release()
        thread.join(timeout=5.0)
        assert admitted.is_set()
        assert ctl.shed_total == 0


# -- degradation ladder ----------------------------------------------------
def fast_ladder(clock, **overrides) -> DegradationLadder:
    config = dict(degrade_p99=0.010, window=4, min_samples=2,
                  hold_seconds=0.0, quarantine_seconds=30.0)
    config.update(overrides)
    return DegradationLadder(LadderConfig(**config), clock=clock)


def push_down(ladder: DegradationLadder, rungs: int = 1) -> None:
    """Feed slow samples until the ladder drops ``rungs`` times."""
    for _ in range(rungs):
        start = ladder.rung
        for _ in range(8):
            ladder.record(0.05)
            if ladder.rung != start:
                break
        assert ladder.rung == start + 1


class TestLadder:
    def test_steps_down_on_high_p99(self):
        ladder = fast_ladder(FakeClock())
        assert ladder.state == "healthy" and ladder.precision() == "f64"
        push_down(ladder)
        assert ladder.state == "degraded_f32" and ladder.precision() == "f32"
        push_down(ladder)
        assert ladder.state == "degraded_int8" and ladder.precision() == "int8"
        push_down(ladder)
        assert ladder.state == "fallback"
        # With a zero hold the FALLBACK auto-probe fires on the very
        # next read (the hold-gated case is covered below).
        assert ladder.precision() == "int8"

    def test_recovers_hysteretically(self):
        clock = FakeClock()
        ladder = fast_ladder(clock, hold_seconds=2.0)
        clock.advance(3.0)
        push_down(ladder)
        # Fast samples inside the hold window must not promote.
        clock.advance(1.0)
        for _ in range(4):
            ladder.record(0.001)
        assert ladder.state == "degraded_f32"
        # Past the hold, samples between recover and degrade thresholds
        # (the hysteresis band) still hold the rung...
        clock.advance(2.0)
        for _ in range(4):
            ladder.record(0.008)
        assert ladder.state == "degraded_f32"
        # ...and only genuinely fast samples promote.
        for _ in range(4):
            ladder.record(0.001)
            if ladder.state == "healthy":
                break
        assert ladder.state == "healthy"

    def test_fallback_probes_up_on_dwell_alone(self):
        clock = FakeClock()
        ladder = fast_ladder(clock, hold_seconds=2.0)
        for _ in range(3):
            clock.advance(2.5)  # satisfy the dwell before each step
            push_down(ladder)
        assert ladder.state == "fallback"
        assert ladder.precision() is None  # still inside the hold
        clock.advance(2.5)
        assert ladder.precision() == "int8"  # auto-probe after dwell
        assert ladder.state == "degraded_int8"

    def test_breaker_open_pins_fallback(self):
        clock = FakeClock()
        ladder = fast_ladder(clock)
        ladder.on_breaker_transition("closed", "open")
        assert ladder.state == "fallback"
        # Pinned: dwell-based probing must not escape while open.
        clock.advance(100.0)
        assert ladder.precision() is None
        ladder.on_breaker_transition("open", "half_open")
        assert ladder.state == "degraded_int8"

    def test_accuracy_trip_quarantines_the_rung(self):
        clock = FakeClock()
        ladder = fast_ladder(clock, quarantine_seconds=30.0)
        push_down(ladder, rungs=2)
        assert ladder.state == "degraded_int8"
        ladder.trip_accuracy("test drift")
        assert ladder.state == "degraded_f32"
        # Latency pressure cannot push back onto the quarantined rung.
        for _ in range(8):
            ladder.record(0.05)
        assert ladder.state == "degraded_f32"
        # After the quarantine expires it can.
        clock.advance(31.0)
        push_down(ladder)
        assert ladder.state == "degraded_int8"

    def test_transitions_recorded_with_reasons(self):
        ladder = fast_ladder(FakeClock())
        push_down(ladder)
        assert len(ladder.history) == 1
        transition = ladder.history[0]
        assert (transition.old, transition.new) == ("healthy", "degraded_f32")
        assert "p99" in transition.reason


# -- accuracy canary -------------------------------------------------------
class TestCanary:
    def test_drift_is_max_relative_deviation(self):
        drift = AccuracyCanary.drift(np.array([1.0, 2.2]), np.array([1.0, 2.0]))
        assert drift == pytest.approx(0.1)

    def test_observe_trips_past_budget(self):
        canary = AccuracyCanary(sample_rate=1.0, budget=0.05)
        assert not canary.observe(np.array([1.04]), np.array([1.0]), "int8")
        assert canary.observe(np.array([1.10]), np.array([1.0]), "int8")
        snap = canary.snapshot()
        assert snap["samples"] == 2 and snap["trips"] == 1
        assert snap["last_drift"] == pytest.approx(0.1)

    def test_sampling_rates_and_determinism(self):
        assert not AccuracyCanary(sample_rate=0.0).should_sample()
        assert AccuracyCanary(sample_rate=1.0).should_sample()
        a = [AccuracyCanary(sample_rate=0.5, seed=7).should_sample()
             for _ in range(1)]
        b = [AccuracyCanary(sample_rate=0.5, seed=7).should_sample()
             for _ in range(1)]
        assert a == b


# -- retry interaction -----------------------------------------------------
class TestRetryGiveUp:
    def test_give_up_exceptions_are_never_retried(self):
        calls = []

        def blown():
            calls.append(1)
            raise DeadlineExceeded("budget gone")

        with pytest.raises(DeadlineExceeded):
            retry_call(blown, policy=RetryPolicy(attempts=5, base_delay=0.0),
                       give_up_on=(DeadlineExceeded, Overloaded),
                       sleep=lambda s: None)
        assert len(calls) == 1


# -- model-backed fixtures -------------------------------------------------
@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


@pytest.fixture(scope="module")
def predictor(trained):
    return CostPredictor(trained.encoder, trained.trainer)


@pytest.fixture(scope="module")
def pairs(pipeline):
    return [(r.plan, r.resources) for r in pipeline.records[:6]]


@pytest.fixture(scope="module")
def encoded(predictor, pairs):
    return predictor.encoder.encode_many(pairs)


# -- executor error propagation and deadlines (satellite regression) -------
class TestExecutorPropagation:
    def test_mid_bucket_fault_reraises_promptly(self, trained, encoded):
        executor = BucketExecutor(trained.trainer.model, batch_size=2,
                                  threads=2)
        restore = FaultInjector().force_forward_errors(trained.trainer.model)
        try:
            with pytest.raises(TrainingError, match="injected forward fault"):
                executor.predict_log(encoded)
        finally:
            restore()
            executor.close()

    def test_executor_recovers_after_fault_and_close_is_idempotent(
            self, trained, encoded):
        executor = BucketExecutor(trained.trainer.model, batch_size=2,
                                  threads=2)
        restore = FaultInjector().force_forward_errors(trained.trainer.model)
        try:
            with pytest.raises(TrainingError):
                executor.predict_log(encoded)
        finally:
            restore()
        preds, _ = executor.predict_log(encoded)  # pool not poisoned
        assert np.all(np.isfinite(preds))
        executor.close()
        executor.close()  # idempotent

    def test_threaded_watchdog_abandons_hung_buckets(self, trained, encoded):
        executor = BucketExecutor(trained.trainer.model, batch_size=2,
                                  threads=2)
        restore = FaultInjector().force_bucket_hang(
            trained.trainer.model, seconds=0.5)
        try:
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded, match="abandoned"):
                executor.predict_log(encoded, deadline=Deadline.after(0.05))
            # The caller gets the answer at the deadline, not after the
            # hang: abandonment, not completion.
            assert time.monotonic() - start < 0.4
        finally:
            restore()
            executor.close()

    def test_serial_path_checks_between_buckets(self, trained, encoded):
        clock = FakeClock()
        executor = BucketExecutor(trained.trainer.model, batch_size=2,
                                  threads=1)
        # The injected "hang" advances the deadline's fake clock, so the
        # cooperative check fires deterministically without sleeping.
        restore = FaultInjector().force_bucket_hang(
            trained.trainer.model, seconds=0.1, sleep=clock.advance)
        try:
            with pytest.raises(DeadlineExceeded):
                executor.predict_log(
                    encoded, deadline=Deadline.after(0.05, clock=clock))
        finally:
            restore()
            executor.close()


# -- guarded chain integration ---------------------------------------------
def make_guard(predictor, pipeline, **kwargs) -> GuardedCostPredictor:
    kwargs.setdefault("retry_policy", RetryPolicy(attempts=1))
    kwargs.setdefault("sleep", lambda s: None)
    return GuardedCostPredictor(
        predictor, gpsj=GPSJCostModel(pipeline.catalog), **kwargs)


class TestGuardOverload:
    def test_blown_deadline_degrades_with_provenance(self, predictor, pipeline):
        clock = FakeClock()
        guard = make_guard(predictor, pipeline, clock=clock)
        record = pipeline.records[0]
        stale = Deadline.after(0.01, clock=clock)
        clock.advance(0.02)
        result = guard.predict_explained(record.plan, record.resources,
                                         deadline=stale)
        assert result.source == "gpsj" and result.degraded
        assert "deadline_exceeded" in result.reason
        counts = guard.degradation_counts()
        assert counts["deadline_exceeded"] == 1
        # Load is not model failure: the breaker must stay closed.
        assert guard.breakers["raal"].state == CLOSED

    def test_default_deadline_is_synthesized(self, predictor, pipeline):
        clock = FakeClock()
        guard = make_guard(predictor, pipeline, clock=clock,
                           default_deadline_ms=25.0)
        # Encoding "takes" 50ms on the fake clock: the synthesized
        # deadline expires at the post-encode check.
        original = predictor.encoder.encode_many

        def slow_encode(pairs):
            clock.advance(0.05)
            return original(pairs)

        predictor.encoder.encode_many = slow_encode
        try:
            record = pipeline.records[0]
            result = guard.predict_explained(record.plan, record.resources)
        finally:
            predictor.encoder.__dict__.pop("encode_many", None)
        assert result.source == "gpsj"
        assert "deadline_exceeded" in result.reason

    def test_shed_falls_back_by_default(self, predictor, pipeline):
        admission = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=0))
        guard = make_guard(predictor, pipeline, admission=admission)
        restore = FaultInjector().force_queue_saturation(admission)
        try:
            record = pipeline.records[0]
            result = guard.predict_explained(record.plan, record.resources)
        finally:
            restore()
        assert result.source == "gpsj"
        assert "shed" in result.reason
        assert guard.degradation_counts()["shed"] == 1
        assert guard.breakers["raal"].state == CLOSED

    def test_shed_mode_reject_raises(self, predictor, pipeline):
        admission = AdmissionController(
            AdmissionConfig(max_in_flight=1, max_queue_depth=0))
        guard = make_guard(predictor, pipeline, admission=admission,
                           shed_mode="reject")
        restore = FaultInjector().force_queue_saturation(admission)
        try:
            record = pipeline.records[0]
            with pytest.raises(Overloaded):
                guard.predict(record.plan, record.resources)
        finally:
            restore()

    def test_unknown_shed_mode_rejected(self, predictor, pipeline):
        with pytest.raises(Exception, match="shed_mode"):
            make_guard(predictor, pipeline, shed_mode="explode")

    def test_degraded_tier_serves_raal_with_provenance(
            self, predictor, pipeline):
        clock = FakeClock()
        ladder = fast_ladder(clock)
        push_down(ladder)  # force the f32 rung
        guard = make_guard(predictor, pipeline, ladder=ladder, clock=clock)
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "raal"  # still the learned model...
        assert "degraded_precision:f32" in result.reason  # ...but degraded
        counts = guard.degradation_counts()
        assert counts["degraded_precision"] == 1
        assert counts["raal.served"] == 1

    def test_ladder_fallback_skips_learned_model(self, predictor, pipeline):
        clock = FakeClock()
        ladder = fast_ladder(clock, hold_seconds=1000.0)
        ladder.on_breaker_transition("closed", "open")  # pin to fallback
        guard = make_guard(predictor, pipeline, ladder=ladder, clock=clock)
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "ladder in fallback" in result.reason
        assert guard.degradation_counts()["ladder_fallback"] == 1

    def test_canary_trips_ladder_on_corrupt_tier(self, predictor, pipeline):
        model = predictor.trainer.model
        clock = FakeClock()
        ladder = fast_ladder(clock)
        push_down(ladder, rungs=2)  # force the int8 rung
        canary = AccuracyCanary(sample_rate=1.0, budget=0.05)
        guard = make_guard(predictor, pipeline, ladder=ladder, canary=canary,
                           clock=clock)
        inference_weights(model, "int8")  # build the cached bundle
        injector = FaultInjector()
        try:
            corrupted = injector.corrupt_precision_cache(
                model, "int8", magnitude=0.5)
            assert corrupted > 0
            record = pipeline.records[0]
            result = guard.predict_explained(record.plan, record.resources)
            # Served from the corrupt tier, but the shadow sample caught it:
            assert "degraded_precision:int8" in result.reason
            assert canary.snapshot()["trips"] >= 1
            assert ladder.state == "degraded_f32"  # stepped up + quarantined
        finally:
            invalidate_inference_cache(model)

    def test_health_state_reports_posture(self, predictor, pipeline):
        clock = FakeClock()
        guard = make_guard(
            predictor, pipeline, clock=clock,
            admission=AdmissionController(clock=clock),
            ladder=fast_ladder(clock), canary=AccuracyCanary(),
            default_deadline_ms=100.0)
        health = guard.health_state()
        assert health["ladder"] == "healthy"
        assert health["precision"] == "f64"
        assert health["breakers"]["raal"] == CLOSED
        assert health["admission"]["in_flight"] == 0
        assert health["canary"]["samples"] == 0
        assert health["default_deadline_ms"] == 100.0


# -- fault injector additions ----------------------------------------------
class TestThreadAwareFaults:
    def test_bucket_hang_restores(self, predictor, encoded):
        model = predictor.trainer.model
        sleeps = []
        restore = FaultInjector().force_bucket_hang(
            model, seconds=0.25, sleep=sleeps.append)
        executor = BucketExecutor(model, batch_size=2, threads=1)
        try:
            executor.predict_log(encoded[:2])
            assert sleeps == [0.25]
        finally:
            restore()
            executor.close()
        assert "forward_inference" not in model.__dict__

    def test_bucket_hang_rejects_negative(self, predictor):
        with pytest.raises(ReproError):
            FaultInjector().force_bucket_hang(predictor.trainer.model, -1.0)

    def test_corrupt_precision_cache_requires_bundle(self, predictor):
        model = predictor.trainer.model
        invalidate_inference_cache(model)
        with pytest.raises(ReproError, match="no cached"):
            FaultInjector().corrupt_precision_cache(model, "int8")
        with pytest.raises(ReproError, match="cached tiers"):
            FaultInjector().corrupt_precision_cache(model, "f64")

    def test_corrupt_precision_cache_survives_fingerprint(
            self, predictor, pairs):
        model = predictor.trainer.model
        int8 = predictor.configured(PredictorConfig(precision="int8"))
        try:
            clean = int8.predict_many(pairs[:2])
            FaultInjector().corrupt_precision_cache(model, "int8",
                                                    magnitude=0.5)
            corrupt = int8.predict_many(pairs[:2])
            # The fingerprint still matches, so the corrupted bundle is
            # served — and drifts far beyond the canary budget.
            assert AccuracyCanary.drift(corrupt, clean) > 0.05
        finally:
            int8.close()
            invalidate_inference_cache(model)

    def test_queue_saturation_holds_and_releases(self):
        ctl = AdmissionController(AdmissionConfig(max_in_flight=3))
        restore = FaultInjector().force_queue_saturation(ctl)
        assert ctl.in_flight == 3
        restore()
        assert ctl.in_flight == 0
        restore()  # idempotent
        assert ctl.in_flight == 0


# -- metrics export (satellite: obs integration) ---------------------------
class TestOverloadMetricsExport:
    def test_counters_gauges_and_histograms_export(self, predictor, pipeline):
        telemetry = obs.Telemetry.create()
        with obs.attached(telemetry):
            clock = FakeClock()
            ladder = fast_ladder(clock)
            admission = AdmissionController(
                AdmissionConfig(max_in_flight=1, max_queue_depth=0),
                clock=clock)
            canary = AccuracyCanary(sample_rate=1.0, budget=0.05)
            guard = make_guard(predictor, pipeline, ladder=ladder,
                               admission=admission, canary=canary,
                               clock=clock)
            record = pipeline.records[0]
            # One shed:
            restore = FaultInjector().force_queue_saturation(admission)
            try:
                guard.predict(record.plan, record.resources)
            finally:
                restore()
            # One deadline blown at the guard's post-encode check:
            stale = Deadline.after(0.0, clock=clock)
            guard.predict(record.plan, record.resources, deadline=stale)
            # ...and one blown inside the executor, between buckets (the
            # injected hang advances the deadline's clock):
            model = predictor.trainer.model
            executor = BucketExecutor(model, batch_size=2, threads=1)
            exec_clock = FakeClock()
            restore = FaultInjector().force_bucket_hang(
                model, seconds=0.1, sleep=exec_clock.advance)
            try:
                encoded = predictor.encoder.encode_many(
                    [(record.plan, record.resources)] * 4)
                with pytest.raises(DeadlineExceeded):
                    executor.predict_log(
                        encoded, deadline=Deadline.after(0.05,
                                                         clock=exec_clock))
            finally:
                restore()
                executor.close()
            # One ladder transition:
            push_down(ladder)
            # One canary observation:
            canary.observe(np.array([1.1]), np.array([1.0]), "int8")

        registry = telemetry.registry
        for name in ("predict.shed_total", "predict.deadline_exceeded_total",
                     "guard.raal.deadline_exceeded_total", "health.state",
                     "canary.drift_ratio", "ladder.transitions_total",
                     "admission.in_flight"):
            assert name in registry, f"missing metric {name}"
        assert registry.get("predict.shed_total").value == 1
        assert registry.get("health.state").value == 1  # degraded_f32
        assert registry.get("canary.drift_ratio").count == 1

        json_text = registry.to_json()
        prom_text = registry.to_prometheus()
        for name in ("predict.shed_total", "predict.deadline_exceeded_total",
                     "health.state", "canary.drift_ratio"):
            assert name in json_text
            assert name.replace(".", "_") in prom_text
        # Histogram buckets render cumulatively in the Prometheus text.
        assert "canary_drift_ratio_bucket" in prom_text
