"""Tests for the training divergence guards and the prediction clamp.

Divergence is injected deterministically by wrapping the trainer
module's ``mse_loss`` — the first N calls are poisoned (NaN or spiked),
after which the real loss resumes. No randomness beyond seeded RNGs.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.raal import RAAL, RAALConfig
from repro.core.trainer import Trainer, TrainerConfig, TrainingSample, collate
from repro.encoding.plan_encoder import EncodedPlan
from repro.errors import TrainingError
from repro.nn import mse_loss as real_mse_loss

NODE_DIM = 6


def make_sample(rng, node_dim=NODE_DIM, num_nodes=3, cost=None):
    feats = rng.normal(size=(num_nodes, node_dim))
    child = np.zeros((num_nodes, num_nodes), dtype=bool)
    for j in range(1, num_nodes):
        child[j, j - 1] = True
    encoded = EncodedPlan(
        node_features=feats,
        child_mask=child,
        resources=rng.uniform(0.1, 1.0, size=7),
        extras=rng.uniform(0.0, 1.0, size=5),
    )
    if cost is None:
        cost = float(rng.uniform(1.0, 50.0))
    return TrainingSample(encoded=encoded, cost_seconds=cost)


@pytest.fixture()
def samples():
    rng = np.random.default_rng(42)
    return [make_sample(rng) for _ in range(12)]


def make_trainer(**overrides) -> Trainer:
    model = RAAL(RAALConfig(node_dim=NODE_DIM, embedding_dim=8, hidden_size=8,
                            latent_dim=4, dense_sizes=(8,), dropout=0.0))
    defaults = dict(epochs=6, batch_size=6, learning_rate=1e-3,
                    early_stopping_patience=10, seed=0)
    defaults.update(overrides)
    return Trainer(model, TrainerConfig(**defaults))


class PoisonedLoss:
    """Wraps the real MSE; poisons calls in [start, stop) by ``factor``."""

    def __init__(self, start, stop, factor):
        self.start, self.stop, self.factor = start, stop, factor
        self.calls = 0

    def __call__(self, pred, target):
        self.calls += 1
        loss = real_mse_loss(pred, target)
        if self.start < self.calls <= self.stop:
            return loss * self.factor
        return loss


# With 12 samples, validation_fraction 0.1 → 11 train / 1 val; batch
# size 6 → 2 train batches + 1 eval batch = 3 mse_loss calls per epoch.
CALLS_PER_EPOCH = 3


class TestDivergenceGuard:
    def test_nan_epoch_triggers_rollback_and_lr_halving(
            self, samples, monkeypatch):
        poison = PoisonedLoss(0, CALLS_PER_EPOCH, float("nan"))
        monkeypatch.setattr("repro.core.trainer.mse_loss", poison)
        trainer = make_trainer(divergence_max_recoveries=2)
        result = trainer.fit(samples)

        assert len(result.recoveries) == 1
        event = result.recoveries[0]
        assert event.epoch == 0
        assert "non-finite" in event.reason
        assert event.learning_rate == pytest.approx(5e-4)
        # The poisoned epoch is recorded truthfully, not hidden.
        assert np.isnan(result.train_losses[0])
        # Training resumed and produced finite epochs afterwards.
        assert np.isfinite(result.train_losses[1:]).all()
        for name, param in trainer.model.named_parameters():
            assert np.isfinite(param.data).all(), name

    def test_loss_spike_triggers_rollback(self, samples, monkeypatch):
        poison = PoisonedLoss(CALLS_PER_EPOCH, 2 * CALLS_PER_EPOCH, 1e6)
        monkeypatch.setattr("repro.core.trainer.mse_loss", poison)
        trainer = make_trainer(divergence_spike_factor=10.0,
                               divergence_max_recoveries=2)
        result = trainer.fit(samples)

        assert len(result.recoveries) == 1
        assert result.recoveries[0].epoch == 1
        assert "spike" in result.recoveries[0].reason

    def test_unrecoverable_divergence_raises_with_finite_model(
            self, samples, monkeypatch):
        poison = PoisonedLoss(0, 10_000, float("nan"))  # never heals
        monkeypatch.setattr("repro.core.trainer.mse_loss", poison)
        trainer = make_trainer(divergence_max_recoveries=2, epochs=20)
        with pytest.raises(TrainingError, match="diverged"):
            trainer.fit(samples)
        # Even on failure the model is rolled back, never handed over NaN.
        for name, param in trainer.model.named_parameters():
            assert np.isfinite(param.data).all(), name

    def test_healthy_training_records_no_recoveries(self, samples):
        trainer = make_trainer()
        result = trainer.fit(samples)
        assert result.recoveries == []
        assert np.isfinite(result.train_losses).all()


class TestCollateValidation:
    def test_mixed_node_dims_rejected_clearly(self):
        rng = np.random.default_rng(0)
        mixed = [make_sample(rng, node_dim=6), make_sample(rng, node_dim=8)]
        with pytest.raises(TrainingError,
                           match="inconsistent node feature dims"):
            collate(mixed)

    def test_mixed_resource_shapes_rejected(self):
        rng = np.random.default_rng(0)
        a = make_sample(rng)
        b = make_sample(rng)
        b.encoded.resources = rng.uniform(size=5)
        with pytest.raises(TrainingError, match="inconsistent resources"):
            collate([a, b])

    def test_consistent_batch_still_collates(self):
        rng = np.random.default_rng(0)
        batch = collate([make_sample(rng), make_sample(rng, num_nodes=5)])
        assert batch.node_features.shape[0] == 2


class TestPredictionClamp:
    def test_saturation_counted_not_hidden(self, samples):
        trainer = make_trainer()
        encoded = [s.encoded for s in samples]
        log_preds = trainer.predict_log(encoded)
        hi = float(np.max(log_preds)) - 1e-9
        clamped_trainer = Trainer(
            trainer.model, replace(trainer.config, log_clamp_max=hi))
        seconds = clamped_trainer.predict_seconds(encoded)
        expected = int(np.count_nonzero(log_preds > hi))
        assert expected >= 1
        assert clamped_trainer.last_saturated == expected
        assert seconds.max() <= np.expm1(max(hi, 0.0)) + 1e-12

    def test_no_saturation_with_default_clamp(self, samples):
        trainer = make_trainer()
        trainer.predict_seconds([s.encoded for s in samples])
        assert trainer.last_saturated == 0

    def test_clamp_bound_is_configurable(self, samples):
        trainer = make_trainer(log_clamp_max=2.0)
        seconds = trainer.predict_seconds([s.encoded for s in samples])
        assert seconds.max() <= np.expm1(2.0) + 1e-12
