"""Tier-1 perf smoke: fast-path training must not be slower than autograd.

A tiny-model, best-of-N timing comparison that fails fast if a change
regresses the fused analytic backward below the autograd training
loop's throughput — without running the full benchmark suite. Full
numbers live in ``benchmarks/test_train_throughput.py``.
"""

import time

import numpy as np

from repro.core import RAAL, RAALConfig, Trainer, TrainerConfig
from repro.core.trainer import TrainingSample
from repro.encoding import EncodedPlan


def _random_samples(config, count, max_n, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(3, max_n + 1))
        child = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            child[i, rng.integers(0, i)] = True
        encoded = EncodedPlan(
            node_features=rng.normal(size=(n, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim),
        )
        out.append(TrainingSample(encoded, float(rng.random() * 10.0)))
    return out


def _fit_seconds(fast_path, samples, config, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        model = RAAL(config)
        trainer = Trainer(model, TrainerConfig(
            epochs=2, batch_size=16, fast_path=fast_path,
            early_stopping_patience=2))
        start = time.perf_counter()
        trainer.fit(samples)
        best = min(best, time.perf_counter() - start)
    return best


def test_fast_path_at_least_autograd_training_throughput():
    config = RAALConfig(node_dim=24, hidden_size=24, embedding_dim=24)
    samples = _random_samples(config, count=64, max_n=12)

    # Warm both paths (BLAS thread pools, allocator) before timing.
    _fit_seconds(True, samples, config, repeats=1)
    _fit_seconds(False, samples, config, repeats=1)

    fast = _fit_seconds(True, samples, config)
    slow = _fit_seconds(False, samples, config)

    # The analytic backward skips Tensor allocation and backward-closure
    # wiring for both the forward and the gradient pass; it must at
    # least match autograd throughput. The 1.1 factor absorbs scheduler
    # noise without hiding real regressions.
    assert fast <= slow * 1.1, (
        f"fast training ({fast * 1e3:.1f} ms) slower than autograd "
        f"({slow * 1e3:.1f} ms) on {len(samples)} samples x 2 epochs")
