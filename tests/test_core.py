"""Tests for repro.core: RAAL model, variants, trainer, predictor, selector."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER
from repro.core import (
    RAAL,
    RAALBatch,
    RAALConfig,
    CostPredictor,
    PlanSelector,
    Trainer,
    TrainerConfig,
    TrainingSample,
    VARIANTS,
    collate,
    make_model,
    variant,
)
from repro.errors import ShapeError, TrainingError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.nn import Tensor
from repro.plan import analyze
from repro.sql import parse


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def raal_samples(pipeline):
    return pipeline.samples_for(variant("RAAL"), "train")


@pytest.fixture(scope="module")
def small_config(pipeline):
    return pipeline.base_model_config(variant("RAAL"))


def _random_batch(config: RAALConfig, batch=3, n=6, seed=0):
    rng = np.random.default_rng(seed)
    child = np.zeros((batch, n, n), dtype=bool)
    child[:, 2, 0] = child[:, 2, 1] = True
    return RAALBatch(
        node_features=rng.normal(size=(batch, n, config.node_dim)),
        child_mask=child,
        node_mask=np.ones((batch, n), dtype=bool),
        resources=rng.random((batch, config.resource_dim)),
        extras=rng.random((batch, config.extras_dim)),
        targets=rng.random(batch),
    )


class TestRAALModel:
    def test_forward_shape(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16)
        model = RAAL(config)
        out = model(_random_batch(config))
        assert out.shape == (3,)

    def test_wrong_node_dim_rejected(self):
        config = RAALConfig(node_dim=20)
        model = RAAL(config)
        bad = _random_batch(RAALConfig(node_dim=21))
        with pytest.raises(ShapeError):
            model(bad)

    def test_invalid_feature_layer(self):
        with pytest.raises(TrainingError):
            RAAL(RAALConfig(feature_layer="transformer"))

    def test_cnn_variant_forward(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            feature_layer="cnn")
        model = RAAL(config)
        assert model(_random_batch(config)).shape == (3,)

    def test_no_node_attention_forward(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            use_node_attention=False)
        model = RAAL(config)
        assert model(_random_batch(config)).shape == (3,)

    def test_no_resource_attention_smaller_dense_input(self):
        with_ra = RAAL(RAALConfig(node_dim=20, use_resource_attention=True))
        without = RAAL(RAALConfig(node_dim=20, use_resource_attention=False))
        assert with_ra.dense.layers[0].in_features > without.dense.layers[0].in_features

    def test_resource_vector_changes_prediction_only_when_aware(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            use_resource_attention=True)
        model = RAAL(config).eval()
        batch = _random_batch(config)
        out1 = model(batch).numpy().copy()
        batch.resources = batch.resources + 0.3
        out2 = model(batch).numpy()
        assert not np.allclose(out1, out2)

    def test_gradients_flow_to_all_parameters(self):
        config = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                            dropout=0.0)
        model = RAAL(config)
        batch = _random_batch(config)
        loss = (model(batch) ** 2.0).sum()
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient for {missing}"

    def test_deterministic_construction(self):
        c = RAALConfig(node_dim=20, seed=9)
        a, b = RAAL(c), RAAL(c)
        np.testing.assert_array_equal(a.embedding.weight.data, b.embedding.weight.data)


class TestVariants:
    def test_all_variants_instantiable(self):
        base = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16)
        for name, spec in VARIANTS.items():
            model = make_model(spec, base)
            cfg = RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                             use_node_attention=spec.use_node_attention,
                             feature_layer=spec.feature_layer)
            assert model(_random_batch(cfg)).shape == (3,)

    def test_variant_lookup_case_insensitive(self):
        assert variant("raal").name == "RAAL"

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant("GHOST")

    def test_na_lstm_has_no_node_attention(self):
        base = RAALConfig(node_dim=20)
        model = make_model(variant("NA-LSTM"), base)
        assert model.node_attention is None

    def test_raac_uses_cnn(self):
        base = RAALConfig(node_dim=20)
        model = make_model(variant("RAAC"), base)
        assert model.cnn is not None
        assert model.plan_feature is None

    def test_resource_attention_switch(self):
        base = RAALConfig(node_dim=20)
        aware = make_model(variant("RAAL"), base, use_resource_attention=True)
        blind = make_model(variant("RAAL"), base, use_resource_attention=False)
        assert aware.resource_attention is not None
        assert blind.resource_attention is None


class TestCollate:
    def test_padding_shapes(self, raal_samples):
        batch = collate(raal_samples[:5])
        n = max(s.encoded.num_nodes for s in raal_samples[:5])
        assert batch.node_features.shape[1] == n
        assert batch.child_mask.shape == (5, n, n)
        assert batch.node_mask.shape == (5, n)

    def test_mask_matches_lengths(self, raal_samples):
        batch = collate(raal_samples[:5])
        for i, sample in enumerate(raal_samples[:5]):
            assert batch.node_mask[i].sum() == sample.encoded.num_nodes

    def test_targets_are_log_costs(self, raal_samples):
        batch = collate(raal_samples[:3])
        expected = [np.log1p(s.cost_seconds) for s in raal_samples[:3]]
        np.testing.assert_allclose(batch.targets, expected)

    def test_empty_batch_rejected(self):
        with pytest.raises(TrainingError):
            collate([])


class TestTrainer:
    def test_loss_decreases(self, pipeline, raal_samples, small_config):
        model = RAAL(small_config)
        trainer = Trainer(model, TrainerConfig(epochs=10, seed=0))
        result = trainer.fit(raal_samples)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_too_few_samples_rejected(self, raal_samples, small_config):
        trainer = Trainer(RAAL(small_config))
        with pytest.raises(TrainingError):
            trainer.fit(raal_samples[:2])

    def test_early_stopping_restores_best(self, raal_samples, small_config):
        model = RAAL(small_config)
        trainer = Trainer(model, TrainerConfig(
            epochs=30, early_stopping_patience=2, seed=0))
        result = trainer.fit(raal_samples[:40])
        assert result.best_epoch <= len(result.train_losses) - 1

    def test_predict_seconds_nonnegative(self, raal_samples, small_config):
        model = RAAL(small_config)
        trainer = Trainer(model, TrainerConfig(epochs=4, seed=0))
        trainer.fit(raal_samples)
        preds = trainer.predict_seconds([s.encoded for s in raal_samples[:10]])
        assert (preds >= 0).all()
        assert np.isfinite(preds).all()

    def test_evaluate_loss_empty_rejected(self, small_config):
        trainer = Trainer(RAAL(small_config))
        with pytest.raises(TrainingError):
            trainer.evaluate_loss([])

    def test_training_deterministic(self, raal_samples, small_config):
        def run():
            model = RAAL(small_config)
            trainer = Trainer(model, TrainerConfig(epochs=3, seed=5))
            return trainer.fit(raal_samples[:30]).train_losses

        assert run() == run()


class TestPredictorAndSelector:
    @pytest.fixture(scope="class")
    def predictor(self, pipeline):
        tv = pipeline.train_variant("RAAL", epochs=8)
        return CostPredictor(tv.encoder, tv.trainer)

    def test_predict_single(self, pipeline, predictor):
        record = pipeline.records[0]
        cost = predictor.predict(record.plan, record.resources)
        assert cost >= 0 and np.isfinite(cost)

    def test_predict_many_matches_single(self, pipeline, predictor):
        records = pipeline.records[:4]
        pairs = [(r.plan, r.resources) for r in records]
        many = predictor.predict_many(pairs)
        singles = [predictor.predict(r.plan, r.resources) for r in records]
        np.testing.assert_allclose(many, singles, rtol=1e-6)

    def test_selector_picks_cheapest_predicted(self, pipeline, predictor):
        sql = pipeline.queries[0]
        query = analyze(parse(sql), pipeline.catalog)
        selector = PlanSelector(predictor, pipeline.catalog)
        result = selector.select(query, PAPER_CLUSTER)
        best = result.predicted_costs.min()
        chosen_idx = int(np.argmin(result.predicted_costs))
        assert result.chosen is result.candidates[chosen_idx]
        assert result.predicted_costs[chosen_idx] == best

    def test_selector_default_is_first_candidate(self, pipeline, predictor):
        sql = pipeline.queries[1]
        query = analyze(parse(sql), pipeline.catalog)
        selector = PlanSelector(predictor, pipeline.catalog)
        result = selector.select(query, PAPER_CLUSTER)
        assert result.default is result.candidates[0]

    def test_selector_with_supplied_candidates(self, pipeline, predictor):
        plans = pipeline.collector.plans_for(pipeline.queries[2])
        query = analyze(parse(pipeline.queries[2]), pipeline.catalog)
        selector = PlanSelector(predictor, pipeline.catalog)
        result = selector.select(query, PAPER_CLUSTER, candidates=plans)
        assert result.candidates == plans
