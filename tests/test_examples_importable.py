"""Smoke checks that every example script is importable and well-formed.

The examples' full runs take minutes (they train models); these tests
verify they load, expose a ``main`` entry point, and carry usage docs —
catching bit-rot without the runtime cost.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
class TestExampleScripts:
    def _load(self, path):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_importable(self, path):
        module = self._load(path)
        assert module is not None

    def test_has_main(self, path):
        module = self._load(path)
        assert callable(getattr(module, "main", None)), f"{path.name} has no main()"

    def test_has_module_docstring_with_run_instructions(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a module docstring"
        assert "Run with" in doc or "python examples/" in doc

    def test_main_guard_present(self, path):
        source = path.read_text()
        assert '__name__ == "__main__"' in source


class TestExampleInventory:
    def test_at_least_seven_examples(self):
        assert len(EXAMPLE_FILES) >= 7

    def test_quickstart_exists(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_required_scenarios_present(self):
        names = {p.stem for p in EXAMPLE_FILES}
        for required in ("quickstart", "resource_impact", "plan_selection",
                         "cost_model_comparison", "cold_start_transfer",
                         "explain", "resource_advisor"):
            assert required in names, f"missing example {required}"
