"""Tests for repro.data: schemas, generators, catalogs, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CategoricalString,
    Catalog,
    Column,
    DataType,
    DerivedInt,
    ForeignKey,
    ForeignKeyRef,
    NormalFloat,
    SerialKey,
    TableGenerator,
    TableSchema,
    UniformInt,
    ZipfInt,
    build_catalog,
    build_imdb_catalog,
    build_tpch_catalog,
    compute_table_statistics,
)
from repro.data.imdb import IMDB_BASE_ROWS, imdb_generators, imdb_schemas
from repro.data.tpch import TPCH_BASE_ROWS, tpch_schemas
from repro.errors import CatalogError


@pytest.fixture(scope="module")
def imdb():
    return build_imdb_catalog(scale=0.05, seed=3)


@pytest.fixture(scope="module")
def tpch():
    return build_tpch_catalog(scale=0.05, seed=3)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT), Column("a", DataType.INT)])

    def test_bad_primary_key_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT)], primary_key="b")

    def test_bad_foreign_key_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a", DataType.INT)],
                        foreign_keys=[ForeignKey("x", "other", "id")])

    def test_column_lookup(self):
        schema = TableSchema("t", [Column("a", DataType.INT), Column("b", DataType.STRING)])
        assert schema.column("b").dtype == DataType.STRING
        assert schema.has_column("a")
        assert not schema.has_column("z")
        with pytest.raises(CatalogError):
            schema.column("z")

    def test_numeric_dtypes(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric

    def test_str_forms(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        assert "t(" in str(schema)
        assert "a int" in str(schema)


class TestGenerators:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_serial_key_is_sequential(self):
        vals = SerialKey(start=5).generate(4, self.rng, {}, {})
        np.testing.assert_allclose(vals, [5, 6, 7, 8])

    def test_uniform_int_bounds(self):
        vals = UniformInt(3, 9).generate(1000, self.rng, {}, {})
        assert vals.min() >= 3 and vals.max() <= 9

    def test_zipf_is_skewed(self):
        vals = ZipfInt(100, skew=1.5).generate(5000, self.rng, {}, {})
        counts = np.bincount(vals.astype(int))
        # The most common value must dominate the 50th most common.
        assert counts.max() > 10 * counts[counts > 0].min()

    def test_normal_float_clipped(self):
        vals = NormalFloat(0.0, 10.0, low=-1.0, high=1.0).generate(500, self.rng, {}, {})
        assert vals.min() >= -1.0 and vals.max() <= 1.0

    def test_categorical_vocab(self):
        vals = CategoricalString(["x", "y"]).generate(100, self.rng, {}, {})
        assert set(vals) <= {"x", "y"}

    def test_categorical_empty_rejected(self):
        with pytest.raises(CatalogError):
            CategoricalString([]).generate(5, self.rng, {}, {})

    def test_nulls_fraction_numeric(self):
        vals = UniformInt(0, 10, nullable_fraction=0.5).generate(2000, self.rng, {}, {})
        frac = np.isnan(vals).mean()
        assert 0.4 < frac < 0.6

    def test_nulls_fraction_string(self):
        vals = CategoricalString(["a"], nullable_fraction=0.3).generate(1000, self.rng, {}, {})
        frac = sum(v is None for v in vals) / len(vals)
        assert 0.2 < frac < 0.4

    def test_foreign_key_values_subset_of_parent(self):
        parent = {"p": {"id": np.arange(1.0, 11.0)}}
        vals = ForeignKeyRef("p", "id", skew=1.0).generate(500, self.rng, {}, parent)
        assert set(vals) <= set(parent["p"]["id"])

    def test_foreign_key_missing_parent_raises(self):
        with pytest.raises(CatalogError):
            ForeignKeyRef("ghost", "id").generate(5, self.rng, {}, {})

    def test_foreign_key_empty_parent_raises(self):
        with pytest.raises(CatalogError):
            ForeignKeyRef("p", "id").generate(5, self.rng, {}, {"p": {"id": np.array([])}})

    def test_derived_correlates_with_base(self):
        context = {"base": np.arange(0.0, 1000.0)}
        vals = DerivedInt("base", transform=lambda b: 2 * b, noise=5.0).generate(
            1000, self.rng, context, {})
        corr = np.corrcoef(context["base"], vals)[0, 1]
        assert corr > 0.99

    def test_derived_missing_base_raises(self):
        with pytest.raises(CatalogError):
            DerivedInt("ghost", transform=lambda b: b).generate(5, self.rng, {}, {})

    def test_table_generator_order_respected(self):
        gen = TableGenerator("t", 50, {
            "id": SerialKey(),
            "twice": DerivedInt("id", transform=lambda b: 2 * b),
        })
        cols = gen.generate(self.rng, {})
        np.testing.assert_allclose(cols["twice"], 2 * cols["id"])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 50), st.floats(0.5, 2.0))
    def test_property_zipf_in_range(self, n_values, skew):
        vals = ZipfInt(n_values, skew=skew).generate(200, np.random.default_rng(1), {}, {})
        assert vals.min() >= 1 and vals.max() <= n_values


class TestStatistics:
    def test_numeric_stats(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.array([1.0, 2.0, 2.0, 5.0])}
        stats = compute_table_statistics(schema, data)
        col = stats.column("a")
        assert col.row_count == 4
        assert col.ndv == 3
        assert col.min_value == 1.0
        assert col.max_value == 5.0

    def test_null_counting(self):
        schema = TableSchema("t", [Column("a", DataType.FLOAT)])
        data = {"a": np.array([1.0, np.nan, np.nan, 4.0])}
        stats = compute_table_statistics(schema, data)
        assert stats.column("a").null_count == 2
        assert stats.column("a").null_fraction == 0.5

    def test_string_stats_top_values(self):
        schema = TableSchema("t", [Column("s", DataType.STRING)])
        data = {"s": np.array(["a", "a", "a", "b", None], dtype=object)}
        stats = compute_table_statistics(schema, data)
        col = stats.column("s")
        assert col.ndv == 2
        assert col.top_values[0] == "a"
        assert col.top_counts[0] == 3
        assert col.null_count == 1

    def test_selectivity_eq_string(self):
        schema = TableSchema("t", [Column("s", DataType.STRING)])
        data = {"s": np.array(["a"] * 8 + ["b"] * 2, dtype=object)}
        stats = compute_table_statistics(schema, data)
        assert stats.column("s").selectivity_eq("a") == pytest.approx(0.8)

    def test_selectivity_eq_numeric_uses_ndv(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.arange(100.0)}
        stats = compute_table_statistics(schema, data)
        assert stats.column("a").selectivity_eq(5) == pytest.approx(0.01)

    def test_selectivity_eq_out_of_range_is_zero(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.arange(100.0)}
        stats = compute_table_statistics(schema, data)
        assert stats.column("a").selectivity_eq(1000) == 0.0

    def test_selectivity_range_uniform(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.arange(1000.0)}
        stats = compute_table_statistics(schema, data)
        sel = stats.column("a").selectivity_range(0, 499)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_selectivity_range_respects_skew(self):
        # 90% of mass at value 1, so range [0, 1.5] should be ~0.9.
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.array([1.0] * 900 + list(np.linspace(2, 100, 100)))}
        stats = compute_table_statistics(schema, data)
        sel = stats.column("a").selectivity_range(None, 1.5)
        assert sel > 0.7

    def test_selectivity_empty_range_zero(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        data = {"a": np.arange(10.0)}
        stats = compute_table_statistics(schema, data)
        assert stats.column("a").selectivity_range(100, 200) == 0.0

    def test_total_bytes_positive(self, imdb):
        assert imdb.statistics("title").total_bytes > 0

    def test_missing_column_raises(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        with pytest.raises(CatalogError):
            compute_table_statistics(schema, {})


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog("db")
        schema = TableSchema("t", [Column("a", DataType.INT)])
        cat.register(schema, {"a": np.arange(5.0)})
        assert cat.has_table("t")
        assert cat.table("t").row_count == 5
        assert cat.statistics("t").row_count == 5

    def test_duplicate_registration_rejected(self):
        cat = Catalog("db")
        schema = TableSchema("t", [Column("a", DataType.INT)])
        cat.register(schema, {"a": np.arange(5.0)})
        with pytest.raises(CatalogError):
            cat.register(schema, {"a": np.arange(5.0)})

    def test_missing_data_column_rejected(self):
        cat = Catalog("db")
        schema = TableSchema("t", [Column("a", DataType.INT), Column("b", DataType.INT)])
        with pytest.raises(CatalogError):
            cat.register(schema, {"a": np.arange(5.0)})

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog("db").table("ghost")

    def test_resolve_column(self, imdb):
        owner = imdb.resolve_column("production_year", ["title", "movie_keyword"])
        assert owner == "title"

    def test_resolve_column_ambiguous(self, imdb):
        with pytest.raises(CatalogError):
            imdb.resolve_column("id", ["title", "keyword"])

    def test_resolve_column_missing(self, imdb):
        with pytest.raises(CatalogError):
            imdb.resolve_column("ghost_col", ["title"])


class TestIMDB:
    def test_all_job_tables_present(self, imdb):
        assert set(imdb.table_names) == set(IMDB_BASE_ROWS)

    def test_row_count_ratios(self, imdb):
        # cast_info must remain the largest fact table after scaling.
        assert imdb.table("cast_info").row_count > imdb.table("title").row_count

    def test_foreign_keys_valid(self, imdb):
        titles = set(imdb.table("title").column("id"))
        mk = imdb.table("movie_keyword").column("movie_id")
        assert set(mk) <= titles

    def test_title_year_correlated_with_id(self, imdb):
        t = imdb.table("title")
        corr = np.corrcoef(t.column("id"), t.column("production_year"))[0, 1]
        assert corr > 0.8

    def test_kind_id_skewed(self, imdb):
        kinds = imdb.table("title").column("kind_id").astype(int)
        counts = np.bincount(kinds)
        assert counts.max() > 3 * np.median(counts[counts > 0])

    def test_deterministic_given_seed(self):
        a = build_imdb_catalog(scale=0.02, seed=9)
        b = build_imdb_catalog(scale=0.02, seed=9)
        np.testing.assert_array_equal(
            a.table("title").column("production_year"),
            b.table("title").column("production_year"),
        )

    def test_different_seeds_differ(self):
        a = build_imdb_catalog(scale=0.02, seed=1)
        b = build_imdb_catalog(scale=0.02, seed=2)
        assert not np.array_equal(
            a.table("movie_keyword").column("keyword_id"),
            b.table("movie_keyword").column("keyword_id"),
        )

    def test_schemas_cover_paper_queries(self):
        # Columns referenced by the paper's four Sec. III queries.
        names = {s.name: s for s in imdb_schemas()}
        assert names["movie_keyword"].has_column("keyword_id")
        assert names["movie_companies"].has_column("company_type_id")
        assert names["title"].has_column("production_year")
        assert names["movie_info_idx"].has_column("info_type_id")

    def test_generators_cover_all_schemas(self):
        gen_tables = {g.table for g in imdb_generators(0.01)}
        assert gen_tables == {s.name for s in imdb_schemas()}


class TestTPCH:
    def test_all_tables_present(self, tpch):
        assert set(tpch.table_names) == set(TPCH_BASE_ROWS)

    def test_lineitem_is_largest(self, tpch):
        sizes = {t: tpch.table(t).row_count for t in tpch.table_names}
        assert max(sizes, key=sizes.get) == "lineitem"

    def test_lineitem_orders_ratio(self, tpch):
        ratio = tpch.table("lineitem").row_count / tpch.table("orders").row_count
        assert 2.0 < ratio < 6.0

    def test_fk_integrity_lineitem_orders(self, tpch):
        orders = set(tpch.table("orders").column("o_orderkey"))
        assert set(tpch.table("lineitem").column("l_orderkey")) <= orders

    def test_discount_bounds(self, tpch):
        d = tpch.table("lineitem").column("l_discount")
        assert d.min() >= 0.0 and d.max() <= 0.1

    def test_schema_column_counts(self):
        by_name = {s.name: len(s.columns) for s in tpch_schemas()}
        assert by_name["lineitem"] == 12
        assert by_name["region"] == 2


class TestBuildCatalog:
    def test_unknown_generator_table_raises(self):
        schema = TableSchema("t", [Column("a", DataType.INT)])
        gen = TableGenerator("ghost", 5, {"a": SerialKey()})
        with pytest.raises(CatalogError):
            build_catalog("db", [schema], [gen])
