"""Tests for the reliability layer: retry, circuit breaker, and the
guarded prediction fallback chain under deterministic fault injection.

No test here sleeps: clocks and sleep functions are injected fakes, and
every fault is seeded.
"""

import numpy as np
import pytest

from repro.core import CostPredictor
from repro.core.selector import PlanSelector
from repro.core.advisor import ResourceAdvisor
from repro.errors import PredictionError, ReproError
from repro.baselines.gpsj import GPSJCostModel
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    FaultInjector,
    GuardedCostPredictor,
    RetryPolicy,
    compute_backoff,
    retry_call,
    static_heuristic_cost,
)


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeSleep:
    """Records requested sleeps instead of sleeping."""

    def __init__(self) -> None:
        self.calls: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)


# -- retry -----------------------------------------------------------------
class TestRetry:
    def test_backoff_schedule(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0, max_delay=0.3)
        assert compute_backoff(policy, 0) == pytest.approx(0.1)
        assert compute_backoff(policy, 1) == pytest.approx(0.2)
        assert compute_backoff(policy, 2) == pytest.approx(0.3)  # capped

    def test_success_after_transient_failures(self):
        sleep = FakeSleep()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return 42

        result = retry_call(flaky, RetryPolicy(attempts=3, base_delay=0.05),
                            sleep=sleep)
        assert result == 42
        assert calls["n"] == 3
        assert sleep.calls == pytest.approx([0.05, 0.1])

    def test_exhausted_attempts_raise_last_error(self):
        sleep = FakeSleep()

        def always_fails():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            retry_call(always_fails, RetryPolicy(attempts=3, base_delay=0.01),
                       sleep=sleep)
        assert len(sleep.calls) == 2  # no sleep after the final attempt

    def test_non_matching_exception_propagates_immediately(self):
        sleep = FakeSleep()

        def boom():
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_call(boom, RetryPolicy(attempts=5), retry_on=(ValueError,),
                       sleep=sleep)
        assert sleep.calls == []

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)


# -- circuit breaker -------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=threshold,
                          cooldown_seconds=cooldown), clock=clock)
        return breaker, clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_k_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert not breaker.allow()  # cooldown restarted at re-open
        clock.advance(2.0)
        assert breaker.allow()


# -- guarded prediction ----------------------------------------------------
@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


@pytest.fixture()
def fresh_predictor(pipeline, trained, tmp_path):
    """A private predictor instance per test, safe to corrupt.

    Round-trips the trained module-scoped predictor through
    persistence so weight corruption in one test never leaks into
    another.
    """
    from repro.core import load_predictor, save_predictor

    source = CostPredictor(trained.encoder, trained.trainer)
    save_predictor(source, tmp_path / "model")
    return load_predictor(tmp_path / "model")


@pytest.fixture()
def guarded(fresh_predictor, pipeline):
    clock = FakeClock()
    guard = GuardedCostPredictor(
        fresh_predictor,
        gpsj=GPSJCostModel(pipeline.catalog),
        breaker_config=BreakerConfig(failure_threshold=2, cooldown_seconds=30.0),
        retry_policy=RetryPolicy(attempts=1),
        clock=clock,
        sleep=FakeSleep(),
    )
    guard._test_clock = clock
    return guard


class TestGuardedPredictor:
    def test_healthy_path_serves_raal_with_provenance(self, guarded, pipeline):
        record = pipeline.records[0]
        result = guarded.predict_explained(record.plan, record.resources)
        assert result.source == "raal"
        assert result.reason is None
        assert not result.degraded
        assert np.isfinite(result.seconds) and result.seconds >= 0

    def test_matches_unguarded_predictor(self, guarded, fresh_predictor, pipeline):
        pairs = [(r.plan, r.resources) for r in pipeline.records[:5]]
        np.testing.assert_allclose(
            guarded.predict_many(pairs), fresh_predictor.predict_many(pairs))

    def test_corrupt_weights_fall_back_to_gpsj(self, guarded, pipeline):
        FaultInjector(seed=7).corrupt_weights(guarded.trainer.model)
        record = pipeline.records[0]
        result = guarded.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "raal" in result.reason
        assert np.isfinite(result.seconds) and result.seconds >= 0

    def test_poisoned_vocabulary_falls_back(self, guarded, pipeline):
        FaultInjector(seed=3).poison_vocabulary(guarded.encoder, fraction=1.0)
        record = pipeline.records[0]
        result = guarded.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "non-finite" in result.reason

    def test_encode_fault_falls_back(self, guarded, pipeline):
        FaultInjector().force_encode_errors(guarded.encoder)
        record = pipeline.records[0]
        result = guarded.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "injected encode fault" in result.reason

    def test_double_fault_reaches_heuristic(self, guarded, pipeline):
        injector = FaultInjector()
        injector.force_encode_errors(guarded.encoder)
        guarded.gpsj = None  # GPSJ also unavailable
        record = pipeline.records[0]
        result = guarded.predict_explained(record.plan, record.resources)
        assert result.source == "heuristic"
        assert result.seconds > 0

    def test_all_stages_failing_raises_prediction_error(
            self, fresh_predictor, pipeline):
        guard = GuardedCostPredictor(fresh_predictor, chain=("raal",),
                                     retry_policy=RetryPolicy(attempts=1),
                                     sleep=FakeSleep())
        FaultInjector().force_encode_errors(guard.encoder)
        record = pipeline.records[0]
        with pytest.raises(PredictionError, match="all fallback stages failed"):
            guard.predict_many_explained([(record.plan, record.resources)])

    def test_breaker_trips_then_recovers_via_half_open_probe(
            self, guarded, pipeline):
        injector = FaultInjector()
        restore = injector.force_encode_errors(guarded.encoder)
        record = pipeline.records[0]
        pair = [(record.plan, record.resources)]

        # K = 2 consecutive failures trip the RAAL breaker.
        assert guarded.predict_many_explained(pair).source == "gpsj"
        assert guarded.predict_many_explained(pair).source == "gpsj"
        assert guarded.breakers["raal"].state == OPEN

        # While open, the stage is skipped without being invoked.
        result = guarded.predict_many_explained(pair)
        assert result.source == "gpsj"
        assert "circuit open" in result.reason
        assert guarded.stats["raal"].skipped_open == 1

        # Heal the encoder, advance past the cooldown: the half-open
        # probe succeeds and the breaker closes again.
        restore()
        guarded._test_clock.advance(31.0)
        result = guarded.predict_many_explained(pair)
        assert result.source == "raal"
        assert guarded.breakers["raal"].state == CLOSED

    def test_oversized_plan_rejected_without_tripping_breaker(
            self, fresh_predictor, pipeline):
        # Shrink the encoder's capacity below the plan's node count.
        fresh_predictor.encoder.structure.max_nodes = 1
        guard = GuardedCostPredictor(
            fresh_predictor, gpsj=GPSJCostModel(pipeline.catalog),
            sleep=FakeSleep())
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "max_nodes" in result.reason
        assert guard.breakers["raal"].state == CLOSED
        assert guard.stats["raal"].rejected_input == 1

    def test_saturated_output_degrades(self, fresh_predictor, pipeline):
        from dataclasses import replace

        from repro.core.trainer import Trainer

        # A microscopic clamp forces every prediction to saturate.
        tiny = replace(fresh_predictor.trainer.config, log_clamp_max=1e-9)
        fresh_predictor.trainer = Trainer(fresh_predictor.trainer.model, tiny)
        guard = GuardedCostPredictor(
            fresh_predictor, gpsj=GPSJCostModel(pipeline.catalog),
            retry_policy=RetryPolicy(attempts=1), sleep=FakeSleep())
        record = pipeline.records[0]
        result = guard.predict_explained(record.plan, record.resources)
        assert result.source == "gpsj"
        assert "saturated" in result.reason

    def test_empty_pairs(self, guarded):
        explained = guarded.predict_many_explained([])
        assert explained.costs.shape == (0,)

    def test_grid_shape_and_provenance(self, guarded, pipeline):
        plans = [pipeline.records[0].plan, pipeline.records[1].plan]
        profiles = [pipeline.records[0].resources, pipeline.records[1].resources,
                    pipeline.records[2].resources]
        explained = guarded.predict_grid_explained(plans, profiles)
        assert explained.costs.shape == (3, 2)
        assert explained.source == "raal"


class TestFaultInjectorDeterminism:
    def test_same_seed_same_corruption(self, pipeline, trained, tmp_path):
        from repro.core import load_predictor, save_predictor

        source = CostPredictor(trained.encoder, trained.trainer)
        save_predictor(source, tmp_path / "a")
        a = load_predictor(tmp_path / "a")
        b = load_predictor(tmp_path / "a")
        FaultInjector(seed=11).corrupt_weights(a.trainer.model, fraction=0.1)
        FaultInjector(seed=11).corrupt_weights(b.trainer.model, fraction=0.1)
        for (name_a, pa), (_, pb) in zip(a.trainer.model.named_parameters(),
                                         b.trainer.model.named_parameters()):
            np.testing.assert_array_equal(np.isnan(pa.data), np.isnan(pb.data),
                                          err_msg=name_a)


class TestHeuristic:
    def test_positive_and_finite(self, pipeline):
        for record in pipeline.records[:5]:
            cost = static_heuristic_cost(record.plan, record.resources)
            assert np.isfinite(cost) and cost > 0

    def test_bigger_plans_cost_more(self, pipeline):
        plans = sorted((r.plan for r in pipeline.records[:10]),
                       key=lambda p: p.num_nodes)
        resources = pipeline.records[0].resources
        small = static_heuristic_cost(plans[0], resources)
        large = static_heuristic_cost(plans[-1], resources)
        if plans[-1].num_nodes > plans[0].num_nodes:
            assert large >= small


class TestIntegrationWithSelectorAndAdvisor:
    def test_selector_surfaces_provenance_on_degradation(
            self, guarded, pipeline):
        FaultInjector().force_encode_errors(guarded.encoder)
        record = pipeline.records[0]
        selector = PlanSelector(guarded, pipeline.catalog)
        result = selector.select(
            query=None, resources=record.resources, candidates=[record.plan])
        assert result.cost_source == "gpsj"
        assert result.degraded
        assert result.degradation_reason is not None

    def test_selector_healthy_provenance(self, guarded, pipeline):
        record = pipeline.records[0]
        selector = PlanSelector(guarded, pipeline.catalog)
        result = selector.select(
            query=None, resources=record.resources, candidates=[record.plan])
        assert result.cost_source == "raal"
        assert not result.degraded

    def test_advisor_carries_cost_source(self, guarded, pipeline):
        FaultInjector(seed=1).corrupt_weights(guarded.trainer.model)
        advisor = ResourceAdvisor(guarded)
        plans = [pipeline.records[0].plan]
        rec = advisor.cheapest_meeting_sla(plans, sla_seconds=1e12)
        assert rec is not None
        assert rec.cost_source == "gpsj"
