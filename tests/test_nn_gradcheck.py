"""Numerical gradient checks for the composite layers (LSTM, attention,
LayerNorm, Conv1d, TreeLSTM) — central-difference validation of every
parameter gradient."""

import numpy as np
import pytest

from repro.baselines.tlstm import TreeLSTMCell
from repro.nn import (
    LSTM,
    Conv1d,
    LayerNorm,
    Linear,
    LSTMCell,
    NodeAwareAttention,
    ResourceAwareAttention,
    Tensor,
)


def check_parameter_gradients(module, loss_fn, atol=2e-4, rtol=2e-3):
    """Compare autograd parameter gradients against finite differences."""
    module.zero_grad()
    loss = loss_fn()
    loss.backward()
    eps = 1e-5
    for name, param in module.named_parameters():
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        # Sample a handful of coordinates per parameter to keep it fast.
        rng = np.random.default_rng(0)
        count = min(6, param.data.size)
        coords = rng.choice(param.data.size, size=count, replace=False)
        for idx in coords:
            multi = np.unravel_index(idx, param.data.shape)
            original = param.data[multi]
            param.data[multi] = original + eps
            plus = loss_fn().item()
            param.data[multi] = original - eps
            minus = loss_fn().item()
            param.data[multi] = original
            numeric = (plus - minus) / (2 * eps)
            got = analytic[multi]
            assert got == pytest.approx(numeric, abs=atol, rel=rtol), (
                f"parameter {name}[{multi}]: analytic {got} vs numeric {numeric}")


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestGradcheck:
    def test_linear(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)))

        def loss():
            return (layer(x) ** 2.0).sum()

        check_parameter_gradients(layer, loss)

    def test_layer_norm(self, rng):
        layer = LayerNorm(6)
        x = Tensor(rng.normal(size=(4, 6)))

        # A fixed multiplier keeps the loss deterministic across calls.
        mult = Tensor(np.random.default_rng(1).normal(size=(4, 6)))

        def loss():
            return (layer(x) * mult).sum()

        check_parameter_gradients(layer, loss)

    def test_lstm_cell(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))

        def loss():
            h, c = cell(x, cell.initial_state(2))
            return (h * h).sum() + (c * c).sum()

        check_parameter_gradients(cell, loss)

    def test_lstm_sequence(self, rng):
        lstm = LSTM(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 4, 3)))

        def loss():
            out, (h, _) = lstm(x)
            return (out * out).mean() + (h * h).sum()

        check_parameter_gradients(lstm, loss)

    def test_lstm_with_mask(self, rng):
        lstm = LSTM(2, 3, rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        mask = np.array([[True, True, True, False, False],
                         [True, True, True, True, True]])

        def loss():
            out, _ = lstm(x, mask=mask)
            return (out * out).sum()

        check_parameter_gradients(lstm, loss)

    def test_node_attention(self, rng):
        attn = NodeAwareAttention(4, 3, rng)
        hidden = Tensor(rng.normal(size=(2, 4, 4)))
        child = np.zeros((2, 4, 4), dtype=bool)
        child[:, 2, 0] = child[:, 2, 1] = True
        child[:, 3, 2] = True
        mask = np.ones((2, 4), dtype=bool)

        def loss():
            return (attn(hidden, child, mask) ** 2.0).sum()

        check_parameter_gradients(attn, loss)

    def test_resource_attention(self, rng):
        attn = ResourceAwareAttention(4, 3, 3, rng)
        hidden = Tensor(rng.normal(size=(2, 5, 4)))
        res = Tensor(rng.random((2, 3)))
        mask = np.ones((2, 5), dtype=bool)
        mask[0, 3:] = False

        def loss():
            return (attn(hidden, res, mask) ** 2.0).sum()

        check_parameter_gradients(attn, loss)

    def test_conv1d(self, rng):
        conv = Conv1d(3, 2, 2, rng)
        x = Tensor(rng.normal(size=(2, 5, 3)))

        def loss():
            return (conv(x) ** 2.0).sum()

        check_parameter_gradients(conv, loss)

    def test_tree_lstm_cell(self, rng):
        cell = TreeLSTMCell(3, 4, rng)
        x = Tensor(rng.normal(size=3))
        child_a = (Tensor(rng.normal(size=4)), Tensor(rng.normal(size=4)))
        child_b = (Tensor(rng.normal(size=4)), Tensor(rng.normal(size=4)))

        def loss():
            h, c = cell(x, [child_a, child_b])
            return (h * h).sum() + (c * c).sum()

        check_parameter_gradients(cell, loss)
