"""Cross-module integration tests: the full pipeline glued together."""

import numpy as np
import pytest

from repro.cluster import PAPER_CLUSTER, SimulatorParams, SparkSimulator
from repro.core import CostPredictor, PlanSelector, variant
from repro.data import build_imdb_catalog, build_tpch_catalog
from repro.engine import execute_plan
from repro.errors import ReproError
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.plan import analyze, default_plan, enumerate_plans
from repro.sql import parse
from repro.workload import DataCollector, QueryGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


class TestEndToEndDeterminism:
    def test_same_seed_same_records(self):
        a = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        b = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        costs_a = [r.cost_seconds for r in a.records]
        costs_b = [r.cost_seconds for r in b.records]
        assert costs_a == costs_b

    def test_same_seed_same_model(self):
        a = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        b = ExperimentPipeline(dataset="imdb", scale=SMOKE)
        ta = a.train_variant("RAAL", epochs=2)
        tb = b.train_variant("RAAL", epochs=2)
        np.testing.assert_allclose(ta.estimated, tb.estimated)


class TestPlanEquivalenceUnderSimulation:
    """Every candidate plan computes the same answer but different costs."""

    def test_counts_equal_costs_differ(self):
        catalog = build_imdb_catalog(scale=0.1, seed=5)
        sql = """select count(*) from title t, movie_companies mc, movie_keyword mk
                 where t.id = mc.movie_id and t.id = mk.movie_id
                 and mk.keyword_id < 60"""
        query = analyze(parse(sql), catalog)
        plans = enumerate_plans(query, catalog)
        counts = set()
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        times = []
        for plan in plans:
            counts.add(float(execute_plan(plan, catalog).column("count(*)")[0]))
            times.append(sim.execute(plan, PAPER_CLUSTER).runtime_seconds)
        assert len(counts) == 1
        assert len(set(np.round(times, 6))) > 1


class TestCostRelevance:
    """The simulated cost must track data volume — the core signal the
    learned model is supposed to pick up."""

    def test_bigger_input_costs_more(self):
        catalog = build_imdb_catalog(scale=0.1, seed=5)
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))

        def cost(sql):
            q = analyze(parse(sql), catalog)
            plan = default_plan(q, catalog)
            execute_plan(plan, catalog)
            return sim.execute(plan, PAPER_CLUSTER).runtime_seconds

        small = cost("select count(*) from keyword k where k.phonetic_code < 100")
        large = cost("select count(*) from cast_info ci where ci.role_id < 9")
        assert large > small

    def test_selective_filter_cheaper_than_full_scan_join(self):
        catalog = build_imdb_catalog(scale=0.1, seed=5)
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))

        def cost(sql):
            q = analyze(parse(sql), catalog)
            plan = default_plan(q, catalog)
            execute_plan(plan, catalog)
            return sim.execute(plan, PAPER_CLUSTER).runtime_seconds

        selective = cost("""select count(*) from title t, movie_keyword mk
                            where t.id = mk.movie_id and mk.keyword_id = 1""")
        broad = cost("""select count(*) from title t, movie_keyword mk
                        where t.id = mk.movie_id and mk.keyword_id > 0""")
        assert selective < broad


class TestSelectorNeverCrashesOnWorkload:
    def test_selection_over_generated_queries(self, pipeline):
        trained = pipeline.train_variant("RAAL", epochs=2)
        predictor = CostPredictor(trained.encoder, trained.trainer)
        selector = PlanSelector(predictor, pipeline.catalog)
        generator = QueryGenerator(pipeline.catalog,
                                   WorkloadConfig(max_joins=3), seed=99)
        selected = 0
        for sql in generator.generate(10):
            try:
                query = analyze(parse(sql), pipeline.catalog)
                result = selector.select(query, PAPER_CLUSTER)
            except ReproError:
                continue
            assert result.chosen in result.candidates
            selected += 1
        assert selected >= 7


class TestFailureInjection:
    def test_collector_survives_malformed_sql(self, pipeline):
        collector = DataCollector(pipeline.catalog, pipeline.simulator)
        records = collector.collect([
            "this is not sql",
            "select count(*) from",
            "select count(*) from movie_keyword mk where mk.keyword_id < 9",
        ])
        assert len(collector.skipped) == 2
        assert records

    def test_simulator_rejects_nan_free_but_unannotated(self, pipeline):
        sql = "select count(*) from title t where t.id < 0"
        query = analyze(parse(sql), pipeline.catalog)
        plans = enumerate_plans(query, pipeline.catalog)
        # Execute: zero-row outputs are annotated (obs_rows = 0.0) and
        # must simulate without errors.
        execute_plan(plans[0], pipeline.catalog)
        runtime = pipeline.simulator.execute(plans[0], PAPER_CLUSTER).runtime_seconds
        assert np.isfinite(runtime) and runtime > 0

    def test_training_with_constant_targets_does_not_crash(self, pipeline):
        from repro.core import RAAL, Trainer, TrainerConfig, TrainingSample
        spec = variant("RAAL")
        samples = pipeline.samples_for(spec, "train")[:16]
        constant = [TrainingSample(s.encoded, 1.0) for s in samples]
        model = RAAL(pipeline.base_model_config(spec))
        trainer = Trainer(model, TrainerConfig(epochs=2))
        result = trainer.fit(constant)
        assert np.isfinite(result.train_losses[-1])

    def test_tpch_pipeline_end_to_end(self):
        pipe = ExperimentPipeline(dataset="tpch", scale=SMOKE)
        tv = pipe.train_variant("RAAL", epochs=2)
        assert np.isfinite(tv.metrics.mse)


class TestCatalogScaleMonotonicity:
    def test_larger_scale_more_rows(self):
        small = build_tpch_catalog(scale=0.05)
        large = build_tpch_catalog(scale=0.2)
        assert large.total_rows() > small.total_rows()

    def test_simulated_cost_grows_with_catalog_scale(self):
        sql = "select count(*) from lineitem l where l.l_quantity < 30"
        sim = SparkSimulator(params=SimulatorParams(noise_sigma=0.0))
        times = []
        for scale in (0.05, 0.2):
            catalog = build_tpch_catalog(scale=scale)
            query = analyze(parse(sql), catalog)
            plan = default_plan(query, catalog)
            execute_plan(plan, catalog)
            times.append(sim.execute(plan, PAPER_CLUSTER).runtime_seconds)
        assert times[1] > times[0]
