"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.reliability import FaultInjector


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dataset == "imdb"
        assert args.variant == "RAAL"
        assert not args.no_resource_attention

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_predict_args(self):
        args = build_parser().parse_args([
            "predict", "--model", "m", "--sql", "select count(*) from title t",
            "--memory-gb", "2.5"])
        assert args.memory_gb == 2.5

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--dataset", "oracle"])


class TestCommands:
    def test_workload_prints_sql(self, capsys):
        code = main(["workload", "--queries", "3", "--catalog-scale", "0.05",
                     "--max-joins", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("select count(*)") == 3
        assert out.strip().endswith(";")

    def test_workload_numeric_class(self, capsys):
        code = main(["workload", "--queries", "5", "--catalog-scale", "0.05",
                     "--workload-class", "numeric"])
        assert code == 0
        assert "like '" not in capsys.readouterr().out

    def test_experiment_smoke(self, capsys):
        code = main(["experiment", "--queries", "12", "--epochs", "2",
                     "--catalog-scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RE" in out and "MSE" in out

    def test_train_then_predict(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        code = main(["train", "--queries", "12", "--epochs", "2",
                     "--catalog-scale", "0.05", "--out", model_dir])
        assert code == 0
        code = main([
            "predict", "--model", model_dir, "--catalog-scale", "0.05",
            "--sql", "select count(*) from title t where t.kind_id < 3",
            "--memory-gb", "2.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<-- chosen" in out
        assert "source: raal" in out


class TestErrorBoundary:
    def test_missing_model_exits_nonzero_with_one_liner(self, tmp_path, capsys):
        code = main([
            "predict", "--model", str(tmp_path / "nope"),
            "--catalog-scale", "0.05",
            "--sql", "select count(*) from title t"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_bad_sql_exits_nonzero(self, shared_model_dir, capsys):
        code = main([
            "predict", "--model", shared_model_dir, "--catalog-scale", "0.05",
            "--sql", "select frobnicate wat"])
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")


@pytest.fixture(scope="module")
def shared_model_dir(tmp_path_factory):
    """One trained checkpoint shared by the doctor/error tests."""
    model_dir = str(tmp_path_factory.mktemp("cli-model") / "model")
    code = main(["train", "--queries", "12", "--epochs", "2",
                 "--catalog-scale", "0.05", "--out", model_dir])
    assert code == 0
    return model_dir


class TestDoctor:
    def test_doctor_ok_on_healthy_checkpoint(self, shared_model_dir, capsys):
        code = main(["doctor", shared_model_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "self-test prediction OK" in out

    def test_doctor_manifest_only_mode(self, shared_model_dir, capsys):
        code = main(["doctor", shared_model_dir, "--no-selftest"])
        assert code == 0
        assert "self-test" not in capsys.readouterr().out

    def test_doctor_flags_truncated_checkpoint(self, shared_model_dir,
                                               tmp_path, capsys):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(shared_model_dir, broken)
        FaultInjector().truncate_file(broken / "model.npz", keep_fraction=0.4)
        code = main(["doctor", str(broken)])
        assert code == 1
        out = capsys.readouterr().out
        assert "model.npz" in out
        assert "FAILED" in out

    def test_doctor_missing_directory(self, tmp_path, capsys):
        code = main(["doctor", str(tmp_path / "ghost")])
        assert code == 1

    def test_doctor_reports_telemetry_self_check(self, shared_model_dir,
                                                 capsys):
        code = main(["doctor", shared_model_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry self-check OK" in out
        assert "encode/forward stages" in out


class TestTelemetryFlag:
    def test_predict_emits_telemetry_jsonl(self, shared_model_dir, tmp_path,
                                           capsys):
        import json

        path = tmp_path / "run.jsonl"
        code = main([
            "predict", "--model", shared_model_dir, "--catalog-scale", "0.05",
            "--sql", "select count(*) from title t",
            "--emit-telemetry", str(path)])
        assert code == 0
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        assert records, "telemetry stream is empty"
        final = records[-1]
        assert final["event"] == "telemetry_report"
        metrics = final["report"]["metrics"]
        assert "guard.requests_total" in metrics
        assert "selector.selections_total" in metrics
        assert "encoder.cache.misses" in metrics
        assert metrics["predict.forward_seconds"]["count"] >= 1

    def test_experiment_telemetry_covers_training(self, tmp_path, capsys):
        import json

        path = tmp_path / "train.jsonl"
        code = main(["experiment", "--queries", "12", "--epochs", "2",
                     "--catalog-scale", "0.05",
                     "--emit-telemetry", str(path)])
        assert code == 0
        records = [json.loads(line)
                   for line in path.read_text().strip().splitlines()]
        epochs = [r for r in records
                  if r["component"] == "trainer" and r["event"] == "epoch"]
        assert len(epochs) >= 2
        metrics = records[-1]["report"]["metrics"]
        assert metrics["train.epoch_seconds"]["count"] >= 2
        assert "train.epochs_run" in metrics


class TestMetricsVerb:
    @pytest.fixture(scope="class")
    def artifact(self, shared_model_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry") / "run.jsonl"
        code = main([
            "predict", "--model", shared_model_dir, "--catalog-scale", "0.05",
            "--sql", "select count(*) from title t",
            "--emit-telemetry", str(path)])
        assert code == 0
        return str(path)

    def test_metrics_table(self, artifact, capsys):
        code = main(["metrics", artifact])
        assert code == 0
        out = capsys.readouterr().out
        assert "guard.requests_total" in out
        assert "predict.forward_seconds" in out

    def test_metrics_json(self, artifact, capsys):
        import json

        code = main(["metrics", artifact, "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["guard.requests_total"]["value"] >= 1

    def test_metrics_prometheus(self, artifact, capsys):
        code = main(["metrics", artifact, "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE guard_requests_total counter" in out
        assert 'predict_forward_seconds_bucket{le="+Inf"}' in out

    def test_metrics_missing_artifact_one_liner(self, tmp_path, capsys):
        code = main(["metrics", str(tmp_path / "ghost.jsonl")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
