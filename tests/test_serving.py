"""Tests for the serving layer: micro-batching, model shards and hot
swap, the JSON service endpoints, the stdlib HTTP front-end, and the
concurrent-clients-during-hot-swap integration contract (zero errors,
only old-or-new provenance, never a torn state).

The micro-batcher tests run against a fake ``execute`` with generous
windows so they are deterministic on loaded CI machines; the service
and hot-swap tests share one small trained model via module-scoped
fixtures (the same SMOKE pipeline the overload tests use).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import CostPredictor
from repro.core.persistence import (checkpoint_fingerprint, save_predictor)
from repro.errors import (CheckpointError, DeadlineExceeded, DeployConflict,
                          ModelNotFound, PredictionError, ReproError,
                          ServingError)
from repro.eval.experiments import SMOKE, ExperimentPipeline
from repro.reliability import Deadline
from repro.serving import (MicroBatcher, PredictionService, ROUTES,
                           ServingConfig, serve)


# -- shared fixtures -------------------------------------------------------
@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(dataset="imdb", scale=SMOKE)


@pytest.fixture(scope="module")
def trained(pipeline):
    return pipeline.train_variant("RAAL", epochs=3)


@pytest.fixture(scope="module")
def checkpoint(trained, tmp_path_factory):
    predictor = CostPredictor(trained.encoder, trained.trainer)
    path = tmp_path_factory.mktemp("serving") / "ckpt"
    save_predictor(predictor, path)
    return str(path)


@pytest.fixture()
def service(pipeline, checkpoint):
    svc = PredictionService(
        ServingConfig(batch_window_ms=2.0, default_deadline_ms=2000.0),
        catalog=pipeline.catalog)
    svc.load_model(checkpoint)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def sql(pipeline):
    return pipeline.queries[0]


# -- micro-batcher ---------------------------------------------------------
class FakeResult:
    def __init__(self, costs):
        self.costs = np.asarray(costs)


class TestMicroBatcher:
    def _echo_execute(self, calls):
        def execute(pairs, deadline):
            calls.append((list(pairs), deadline))
            return FakeResult(np.arange(len(pairs), dtype=float))
        return execute

    def test_concurrent_submissions_fuse_into_one_batch(self):
        calls = []
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=150.0,
                               max_pairs=64)
        barrier = threading.Barrier(4)
        items = [None] * 4

        def client(i):
            barrier.wait()
            items[i] = batcher.submit([("plan", f"prof{i}")])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        # All four requests landed in one window → one fused execute.
        assert len(calls) == 1
        assert len(calls[0][0]) == 4
        offsets = sorted(item.offset for item in items)
        assert offsets == [0, 1, 2, 3]
        for item in items:
            assert item.batch_size == 4
            # Each caller's slice is its own pair's score.
            assert item.result.costs[item.offset] == float(item.offset)

    def test_window_zero_dispatches_inline(self):
        calls = []
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=0.0)
        assert not batcher.enabled
        item = batcher.submit([("p", "r"), ("p2", "r")])
        assert len(calls) == 1
        assert item.offset == 0 and item.batch_size == 2
        assert batcher.snapshot()["batches"] == 1
        batcher.close()

    def test_max_pairs_closes_window_early(self):
        calls = []
        # A window long enough that only the max_pairs bound can close
        # it within the test's runtime.
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=30_000.0,
                               max_pairs=2)
        done = []

        def client():
            done.append(batcher.submit([("p", "r")]))

        threads = [threading.Thread(target=client) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(done) == 2
        assert len(calls) == 1 and len(calls[0][0]) == 2
        batcher.close()

    def test_expired_deadline_fails_fast_without_queueing(self):
        calls = []
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=50.0)
        deadline = Deadline.from_ms(0.001)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded):
            batcher.submit([("p", "r")], deadline=deadline)
        assert calls == []  # never reached execute
        batcher.close()

    def test_batch_runs_under_tightest_member_deadline(self):
        calls = []
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=200.0,
                               max_pairs=2)
        tight = Deadline.from_ms(60_000.0)
        loose = Deadline.from_ms(120_000.0)
        results = []

        def client(deadline):
            results.append(batcher.submit([("p", "r")], deadline=deadline))

        threads = [threading.Thread(target=client, args=(d,))
                   for d in (loose, tight)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(calls) == 1
        assert calls[0][1] is tight
        batcher.close()

    def test_execute_failure_scatters_to_all_members(self):
        def explode(pairs, deadline):
            raise PredictionError("boom")

        batcher = MicroBatcher(explode, window_ms=100.0, max_pairs=2)
        errors = []

        def client():
            try:
                batcher.submit([("p", "r")])
            except PredictionError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(errors) == 2
        # The dispatcher survives a failed batch.
        calls = []
        batcher.execute = self._echo_execute(calls)
        batcher.submit([("p", "r")])
        assert len(calls) == 1
        batcher.close()

    def test_submit_after_close_runs_inline(self):
        calls = []
        batcher = MicroBatcher(self._echo_execute(calls), window_ms=50.0)
        batcher.submit([("p", "r")])
        batcher.close()
        item = batcher.submit([("p", "r")])
        assert item.batch_size == 1
        assert len(calls) == 2

    def test_empty_pairs_and_bad_config_raise(self):
        batcher = MicroBatcher(lambda p, d: None, window_ms=0.0)
        with pytest.raises(PredictionError):
            batcher.submit([])
        with pytest.raises(ReproError):
            MicroBatcher(lambda p, d: None, window_ms=-1.0)
        with pytest.raises(ReproError):
            MicroBatcher(lambda p, d: None, max_pairs=0)


# -- versioning ------------------------------------------------------------
class TestVersioning:
    def test_fingerprint_is_stable_and_content_bound(self, checkpoint,
                                                     tmp_path):
        first = checkpoint_fingerprint(checkpoint)
        assert first == checkpoint_fingerprint(checkpoint)
        assert len(first) == 64 and int(first, 16) >= 0
        with pytest.raises(CheckpointError):
            checkpoint_fingerprint(tmp_path / "nothing-here")

    def test_versions_embed_generation_and_fingerprint(self, service,
                                                       checkpoint):
        shard = service.registry.shard("default")
        version = shard.current.version
        assert version.startswith("g1-")
        assert version.endswith(checkpoint_fingerprint(checkpoint)[:12])


# -- hot swap --------------------------------------------------------------
class TestHotSwap:
    def test_deploy_shadow_and_auto_promote(self, service, checkpoint, sql):
        v1 = service.registry.shard("default").current.version
        outcome = service.deploy({"checkpoint": checkpoint,
                                  "shadow_requests": 2, "max_qerror": 10.0})
        assert outcome["state"] == "shadowing"
        assert outcome["version"].startswith("g2-")
        for _ in range(3):
            service.predict({"sql": sql})
        shard = service.registry.shard("default")
        assert shard.current.version == outcome["version"]
        assert shard.candidate is None
        assert shard._previous.version == v1
        # And back again.
        rolled = service.rollback({})
        assert rolled["version"] == v1

    def test_instant_promote_without_shadowing(self, service, checkpoint):
        outcome = service.deploy({"checkpoint": checkpoint,
                                  "shadow_requests": 0})
        assert outcome["state"] == "promoted"

    def test_conflicting_candidate_rejected(self, service, checkpoint):
        service.deploy({"checkpoint": checkpoint, "shadow_requests": 50,
                        "auto_promote": False})
        with pytest.raises(DeployConflict):
            service.deploy({"checkpoint": checkpoint, "shadow_requests": 1})

    def test_gate_rejects_candidate_with_impossible_bar(self, service,
                                                        checkpoint, sql):
        # q-error is >= 1 by construction, so a bar below 1 can never
        # pass: the candidate must be rejected, incumbent unchanged.
        incumbent = service.registry.shard("default").current.version
        service.deploy({"checkpoint": checkpoint, "shadow_requests": 1,
                        "max_qerror": 0.5})
        for _ in range(2):
            service.predict({"sql": sql})
        shard = service.registry.shard("default")
        assert shard.current.version == incumbent
        assert shard.candidate is None

    def test_corrupt_checkpoint_refused(self, service, checkpoint, tmp_path):
        import shutil

        bad = tmp_path / "bad-ckpt"
        shutil.copytree(checkpoint, bad)
        (bad / "model.npz").write_bytes(b"not a model")
        with pytest.raises(CheckpointError):
            service.deploy({"checkpoint": str(bad)})

    def test_rollback_without_previous_conflicts(self, pipeline, checkpoint):
        svc = PredictionService(ServingConfig(), catalog=pipeline.catalog)
        svc.load_model(checkpoint)
        try:
            with pytest.raises(DeployConflict):
                svc.rollback({})
        finally:
            svc.close()

    def test_unknown_model_not_found(self, service):
        with pytest.raises(ModelNotFound):
            service.predict({"sql": "select count(*) from title t",
                             "model": "nope"})


# -- service endpoints -----------------------------------------------------
class TestService:
    def test_predict_response_contract(self, service, sql):
        body = service.predict({"sql": sql})
        assert body["model"] == "default"
        assert body["model_version"].startswith("g")
        assert body["request_id"]
        assert body["source"] in ("raal", "gpsj", "heuristic")
        plan_names = [p["plan"] for p in body["plans"]]
        assert body["chosen"] in plan_names
        costs = [p["seconds"] for p in body["plans"]]
        assert min(costs) == body["plans"][plan_names.index(
            body["chosen"])]["seconds"]
        assert all(c >= 0 for c in costs)

    def test_feedback_closes_the_loop(self, service, sql):
        body = service.predict({"sql": sql})
        plan = body["plans"][0]
        out = service.feedback({"request_id": body["request_id"],
                                "observed_seconds": plan["seconds"] * 2.0,
                                "index": plan["feedback_index"]})
        assert out["recorded"]
        assert out["q_error"] == pytest.approx(2.0)

    def test_predict_grid_shape(self, service, sql):
        body = service.predict_grid({
            "sql": sql,
            "profiles": [{}, {"executors": 4, "memory_gb": 8}]})
        assert body["profiles"] == 2
        assert len(body["costs"]) == 2
        assert len(body["costs"][0]) == len(body["plans"])
        assert body["request_id"]

    def test_plan_cache_reuses_candidate_plans(self, service, sql):
        service.predict({"sql": sql})
        before = len(service._plan_cache)
        service.predict({"sql": "  " + sql + "  "})  # normalizes to same key
        assert len(service._plan_cache) == before

    def test_malformed_bodies_rejected(self, service, sql):
        for bad in (
            {},                                        # no sql
            {"sql": 42},                               # wrong type
            {"sql": sql, "resources": [1]},            # not an object
            {"sql": sql, "resources": {"gpus": 8}},    # unknown key
            {"sql": sql, "deadline_ms": -5},           # non-positive
            {"sql": sql, "deadline_ms": "soon"},       # not a number
            {"sql": sql, "model": ""},                 # empty model id
        ):
            with pytest.raises(ServingError):
                service.predict(bad)
        with pytest.raises(ServingError):
            service.predict_grid({"sql": sql, "profiles": []})
        with pytest.raises(ServingError):
            service.feedback({"request_id": "", "observed_seconds": 1.0})
        with pytest.raises(ServingError):
            service.feedback({"request_id": "req-1",
                              "observed_seconds": "fast"})
        with pytest.raises(ServingError):
            service.deploy({})

    def test_health_and_models_snapshots(self, service, sql):
        service.predict({"sql": sql})
        health = service.health()
        assert health["status"] == "ok"
        model = health["models"]["default"]
        assert model["ladder"] == "healthy"
        assert model["batcher"]["enabled"]
        models = service.models()
        assert models["models"]["default"]["version"].startswith("g")
        metrics = service.metrics_text()
        assert "serve_predict_requests_total" in metrics


# -- HTTP front-end --------------------------------------------------------
def _post(base, path, body):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30.0) as response:
            raw = response.read()
            if "json" in (response.headers.get("Content-Type") or ""):
                return response.status, json.loads(raw)
            return response.status, raw.decode()
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture()
def server(pipeline, checkpoint):
    svc = PredictionService(ServingConfig(batch_window_ms=2.0),
                            catalog=pipeline.catalog)
    svc.load_model(checkpoint)
    srv = serve(svc, port=0, background=True)
    yield f"http://127.0.0.1:{srv.port}"
    srv.close()


class TestHTTP:
    def test_predict_and_feedback_over_http(self, server, sql):
        status, body = _post(server, "/v1/predict", {"sql": sql})
        assert status == 200
        assert body["model_version"].startswith("g1-")
        status, out = _post(server, "/v1/feedback", {
            "request_id": body["request_id"],
            "observed_seconds": body["plans"][0]["seconds"],
            "index": body["plans"][0]["feedback_index"]})
        assert status == 200 and out["recorded"]

    def test_error_statuses_match_docs(self, server, sql):
        assert _post(server, "/v1/predict", {})[0] == 400
        assert _post(server, "/v1/predict",
                     {"sql": "SELEC broken FRM"})[0] == 400
        assert _post(server, "/v1/predict",
                     {"sql": sql, "model": "ghost"})[0] == 404
        assert _get(server, "/no/such/path")[0] == 404
        assert _get(server, "/v1/predict")[0] == 405
        assert _post(server, "/admin/promote", {})[0] == 409
        assert _post(server, "/admin/rollback", {})[0] == 409
        # Raw non-JSON body.
        request = urllib.request.Request(
            server + "/v1/predict", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400

    def test_health_metrics_and_models(self, server, sql):
        _post(server, "/v1/predict", {"sql": sql})
        status, health = _get(server, "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, metrics = _get(server, "/metrics")
        assert status == 200
        assert "serve_predict_requests_total" in metrics
        status, models = _get(server, "/v1/models")
        assert status == 200 and "default" in models["models"]

    def test_every_route_is_reachable(self, server, checkpoint, sql):
        """Each declared route answers with a documented status (not
        404/500): the routing table and handlers stay in sync."""
        bodies = {
            "/v1/predict": {"sql": sql},
            "/v1/predict_grid": {"sql": sql, "profiles": [{}]},
            "/v1/feedback": {"request_id": "req-unknown",
                             "observed_seconds": 1.0},
            "/admin/deploy": {"checkpoint": checkpoint,
                              "shadow_requests": 0},
            "/admin/promote": {},
            "/admin/rollback": {},
        }
        for route in ROUTES:
            if route.method == "GET":
                status, _ = _get(server, route.path)
            else:
                status, _ = _post(server, route.path, bodies[route.path])
            assert status in (200, 409), (route.path, status)


# -- the integration contract: concurrent clients during a hot swap --------
class TestConcurrentHotSwap:
    def test_zero_errors_and_no_torn_state_mid_swap(self, pipeline,
                                                    checkpoint, sql):
        """N client threads hammer predict while a deploy + shadow +
        promote runs; every response must succeed and carry exactly one
        of the two legitimate versions."""
        svc = PredictionService(
            ServingConfig(batch_window_ms=1.0, default_deadline_ms=5000.0),
            catalog=pipeline.catalog)
        v1 = svc.load_model(checkpoint)
        errors: list = []
        versions: set = set()
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    body = svc.predict({"sql": sql})
                except Exception as exc:  # any error fails the contract
                    errors.append(exc)
                    return
                version = body["model_version"]
                if not version:
                    errors.append(AssertionError("torn/missing version"))
                    return
                versions.add(version)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.3)  # traffic flowing on the incumbent
            outcome = svc.deploy({"checkpoint": checkpoint,
                                  "shadow_requests": 2,
                                  "max_qerror": 100.0})
            v2 = outcome["version"]
            # Shadowing promotes from live traffic; wait for the swap.
            deadline = time.monotonic() + 30.0
            shard = svc.registry.shard("default")
            while (shard.current.version != v2
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert shard.current.version == v2, "promotion never landed"
            time.sleep(0.3)  # traffic flowing on the new incumbent
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
            svc.close()

        assert errors == []
        assert versions <= {v1, v2}, f"unexpected provenance: {versions}"
        assert versions == {v1, v2}, (
            f"expected traffic on both sides of the swap, saw {versions}")
