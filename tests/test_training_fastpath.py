"""Training fast path: analytic backward equivalence and fit() parity.

The fused training step (`RAAL.forward_backward` /
`TrainerConfig.fast_path`) must produce, for every model variant, the
same gradients as the autograd path to ≤ 1e-8 per parameter, and
`Trainer.fit` must walk the same loss trajectory whichever path computes
the gradients (both share the epoch-persistent bucketed collation, so
the gradient kernel is the only difference).
"""

import numpy as np
import pytest

from repro import obs
from repro.cli import build_parser, _make_pipeline
from repro.core import RAAL, RAALConfig, Trainer, TrainerConfig
from repro.core.trainer import TrainingSample
from repro.encoding import EncodedPlan
from repro.errors import TrainingError
from repro.nn import Tensor, mse_loss, raal_forward_backward
from repro.nn.layers import Dropout

TOL = 1e-8

VARIANT_SWITCHES = {
    "RAAL": {},
    "NE-LSTM": {},
    "NA-LSTM": {"use_node_attention": False},
    "RAAC": {"feature_layer": "cnn"},
    "no-resource-attention": {"use_resource_attention": False},
}


def small_config(seed=0, dropout=0.0, **switches) -> RAALConfig:
    return RAALConfig(node_dim=20, hidden_size=16, embedding_dim=16,
                      latent_dim=8, dense_sizes=(24, 12), dropout=dropout,
                      seed=seed, **switches)


def make_batch(config: RAALConfig, batch=5, n=9, seed=0, pad=True,
               dense_child_mask=False):
    """Random *training* batch (targets set) with tree-shaped masks."""
    from repro.core import RAALBatch

    rng = np.random.default_rng(seed)
    lengths = rng.integers(2, n + 1, size=batch) if pad else np.full(batch, n)
    mask = np.zeros((batch, n), dtype=bool)
    child = np.zeros((batch, n, n), dtype=bool)
    for b, length in enumerate(lengths):
        mask[b, :length] = True
        if dense_child_mask:
            block = ~np.eye(length, dtype=bool)
            child[b, :length, :length] = block
        else:
            for i in range(1, length):
                child[b, i, rng.integers(0, i)] = True
    return RAALBatch(
        node_features=rng.normal(size=(batch, n, config.node_dim)),
        child_mask=child,
        node_mask=mask,
        resources=rng.random((batch, config.resource_dim)),
        extras=rng.random((batch, config.extras_dim)),
        targets=rng.normal(size=batch),
    )


def autograd_reference(model, batch):
    """Legacy gradients: autograd forward + mse backward."""
    model.zero_grad()
    loss = mse_loss(model(batch), Tensor(batch.targets))
    loss.backward()
    grads = {name: p.grad.copy() for name, p in model.named_parameters()}
    return float(loss.data), grads


class TestGradientEquivalence:
    @pytest.mark.parametrize("name", sorted(VARIANT_SWITCHES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("pad", [True, False], ids=["padded", "unpadded"])
    def test_variant_equivalence(self, name, seed, pad):
        config = small_config(seed=seed, **VARIANT_SWITCHES[name])
        model = RAAL(config).train()
        batch = make_batch(config, seed=seed, pad=pad,
                           dense_child_mask=(name == "NE-LSTM"))
        ref_loss, ref = autograd_reference(model, batch)
        model.zero_grad()
        loss, pred = model.forward_backward(batch)
        assert isinstance(pred, np.ndarray) and pred.shape == (batch.size,)
        assert loss == pytest.approx(ref_loss, abs=TOL)
        for pname, param in model.named_parameters():
            assert param.grad is not None, pname
            dev = float(np.max(np.abs(param.grad - ref[pname])))
            assert dev <= TOL, f"{name}/{pname}: grad deviation {dev:.3e}"

    def test_dropout_masks_align_with_autograd(self):
        """In train mode both paths draw identical masks from the same rng."""
        config = small_config(dropout=0.4)
        model = RAAL(config).train()
        batch = make_batch(config, seed=11)
        droppers = [l for l in model.dense if isinstance(l, Dropout)]
        states = [l._rng.bit_generator.state for l in droppers]
        ref_loss, ref = autograd_reference(model, batch)
        for layer, state in zip(droppers, states):
            layer._rng.bit_generator.state = state
        model.zero_grad()
        loss, _ = model.forward_backward(batch)
        assert loss == pytest.approx(ref_loss, abs=TOL)
        for pname, param in model.named_parameters():
            np.testing.assert_allclose(param.grad, ref[pname],
                                       rtol=0.0, atol=TOL, err_msg=pname)

    def test_gradients_accumulate(self):
        """Two calls without zero_grad sum, like autograd .backward()."""
        config = small_config()
        model = RAAL(config).train()
        batch = make_batch(config, seed=4)
        model.zero_grad()
        model.forward_backward(batch)
        once = {n: p.grad.copy() for n, p in model.named_parameters()}
        model.forward_backward(batch)
        for pname, param in model.named_parameters():
            np.testing.assert_allclose(param.grad, 2.0 * once[pname],
                                       rtol=0.0, atol=TOL, err_msg=pname)

    def test_missing_targets_rejected(self):
        config = small_config()
        model = RAAL(config)
        batch = make_batch(config, seed=5)
        batch.targets = None
        with pytest.raises(TrainingError):
            model.forward_backward(batch)

    def test_free_function_matches_method(self):
        config = small_config()
        model = RAAL(config).train()
        batch = make_batch(config, seed=6)
        model.zero_grad()
        loss_m, pred_m = model.forward_backward(batch)
        model.zero_grad()
        loss_f, pred_f = raal_forward_backward(model, batch)
        assert loss_m == loss_f
        np.testing.assert_array_equal(pred_m, pred_f)


def random_samples(config: RAALConfig, count=28, max_n=10, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        n = int(rng.integers(2, max_n + 1))
        child = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            child[i, rng.integers(0, i)] = True
        encoded = EncodedPlan(
            node_features=rng.normal(size=(n, config.node_dim)),
            child_mask=child,
            resources=rng.random(config.resource_dim),
            extras=rng.random(config.extras_dim),
        )
        out.append(TrainingSample(encoded, float(rng.random() * 20.0)))
    return out


def fit_once(fast_path: bool, epochs=5, dropout=0.1, seed=0):
    config = small_config(seed=seed, dropout=dropout)
    model = RAAL(config)
    trainer = Trainer(model, TrainerConfig(
        epochs=epochs, batch_size=8, fast_path=fast_path,
        early_stopping_patience=epochs, seed=seed))
    result = trainer.fit(random_samples(config, seed=seed))
    return result, model


class TestFitParity:
    def test_fast_and_legacy_fit_walk_the_same_trajectory(self):
        """Same seed ⇒ same loss history whichever path computes grads.

        Both paths consume the same pre-collated batches, batch order,
        and dropout rng stream; the only difference is the gradient
        kernel, equivalent to ≤ 1e-8 — so the loss trajectories must
        coincide to float accumulation error.
        """
        fast, fast_model = fit_once(fast_path=True)
        legacy, legacy_model = fit_once(fast_path=False)
        assert len(fast.train_losses) == len(legacy.train_losses)
        assert fast.best_epoch == legacy.best_epoch
        np.testing.assert_allclose(fast.train_losses, legacy.train_losses,
                                   rtol=0.0, atol=1e-7)
        np.testing.assert_allclose(fast.val_losses, legacy.val_losses,
                                   rtol=0.0, atol=1e-7)
        for (pname, fp), (_, lp) in zip(fast_model.named_parameters(),
                                        legacy_model.named_parameters()):
            np.testing.assert_allclose(fp.data, lp.data, rtol=0.0, atol=1e-7,
                                       err_msg=pname)

    def test_fast_fit_is_deterministic(self):
        one, _ = fit_once(fast_path=True)
        two, _ = fit_once(fast_path=True)
        assert one.train_losses == two.train_losses
        assert one.val_losses == two.val_losses
        assert one.best_epoch == two.best_epoch

    def test_fit_records_throughput(self):
        result, _ = fit_once(fast_path=True, epochs=3)
        assert len(result.samples_per_sec) == len(result.train_losses)
        assert all(t > 0 for t in result.samples_per_sec)

    def test_evaluate_loss_fast_matches_legacy(self):
        config = small_config()
        model = RAAL(config)
        samples = random_samples(config, count=13, seed=3)
        fast = Trainer(model, TrainerConfig(batch_size=4, fast_path=True))
        legacy = Trainer(model, TrainerConfig(batch_size=4, fast_path=False))
        assert fast.evaluate_loss(samples) == pytest.approx(
            legacy.evaluate_loss(samples), abs=TOL)

    def test_fast_fit_never_calls_autograd_forward(self, monkeypatch):
        calls = []
        original = RAAL.forward
        monkeypatch.setattr(
            RAAL, "forward",
            lambda self, batch: calls.append(1) or original(self, batch))
        fit_once(fast_path=True, epochs=2)
        assert not calls, "fast-path fit fell back to the autograd forward"


class TestTrainingTelemetry:
    def test_fit_emits_throughput_metrics_and_events(self):
        telemetry = obs.Telemetry.create()
        with obs.attached(telemetry):
            result, _ = fit_once(fast_path=True, epochs=2)
        reg = telemetry.registry
        tput = reg.histogram("train.samples_per_sec").snapshot()
        assert tput["count"] == len(result.train_losses)
        assert tput["sum"] > 0
        assert reg.counter("train.batches").value == \
            len(result.train_losses) * 4  # 26 train samples / batch 8
        epochs = telemetry.events.events(component="trainer", event="epoch")
        assert len(epochs) == len(result.train_losses)
        for event in epochs:
            assert event["throughput"] > 0


class TestCLIWiring:
    def test_no_fast_path_flag_parses(self):
        args = build_parser().parse_args(
            ["train", "--out", "x", "--no-fast-path"])
        assert args.no_fast_path is True
        args = build_parser().parse_args(["train", "--out", "x"])
        assert args.no_fast_path is False

    def test_flag_reaches_trainer_config(self):
        args = build_parser().parse_args(
            ["experiment", "--queries", "4", "--no-fast-path"])
        pipeline = _make_pipeline(args)
        assert pipeline.scale.fast_path is False
        args = build_parser().parse_args(["experiment", "--queries", "4"])
        assert _make_pipeline(args).scale.fast_path is True
